//! T6: a multi-core MIPS-class design — the million-device ingest workload.
//!
//! One netlist tiles `cores` copies of the [`crate::datapath`] core (each
//! under a `c<k>_` name prefix, sharing global φ1/φ2) and gives every core
//! a cache-like storage bank: a larger register file written from the
//! core's writeback lines, read onto a precharged bus — the dense-array
//! idiom that dominated real chip device counts. At
//! [`MILLION_DEVICE_CORES`] cores the design crosses one million devices,
//! the scale the streaming ingest path (DESIGN.md §15) is sized for.

use tv_netlist::{Netlist, NetlistBuilder, NodeId, Tech};

use crate::datapath::{datapath_into, DatapathConfig};
use crate::regfile::regfile_into;

/// Registers in each core's cache-like bank. Chosen so one core
/// (datapath plus bank) lands near 15k devices: a million-device design
/// stays under a hundred cores.
pub const CACHE_REGS: usize = 48;

/// Smallest core count at which [`t6_mips_mc`] exceeds one million
/// devices.
pub const MILLION_DEVICE_CORES: usize = 67;

/// The generated multi-core design.
#[derive(Debug, Clone)]
pub struct MultiCore {
    /// The finished netlist.
    pub netlist: Netlist,
    /// Number of cores instantiated.
    pub cores: usize,
    /// φ1 clock node (shared by every core).
    pub phi1: NodeId,
    /// φ2 clock node (shared by every core).
    pub phi2: NodeId,
}

/// Generates a `cores`-core MIPS-class design with per-core cache banks.
///
/// Every core is a full [`crate::datapath::datapath`] instance
/// (32 bits, 8 registers, 4 shifts) under the prefix `c<k>_`, plus a
/// [`CACHE_REGS`]-register bank written from the core's `c<k>_wb<i>`
/// lines and read onto a precharged bus `c<k>_cache_bus<i>`.
///
/// # Panics
///
/// Panics if `cores == 0`.
pub fn t6_mips_mc(tech: Tech, cores: usize) -> MultiCore {
    assert!(cores > 0, "a multi-core design needs at least one core");
    let config = DatapathConfig::mips32();
    let mut b = NetlistBuilder::new(tech);
    let phi1 = b.clock("phi1", 0);
    let phi2 = b.clock("phi2", 1);
    for k in 0..cores {
        let p = format!("c{k}_");
        datapath_into(&mut b, &p, phi1, phi2, config);
        cache_bank_into(&mut b, &p, phi1, phi2, CACHE_REGS, config.width);
    }
    let netlist = b.finish().expect("multi-core generator is valid");
    let lookup = |name: &str| netlist.node_by_name(name).expect("known node");
    MultiCore {
        phi1: lookup("phi1"),
        phi2: lookup("phi2"),
        netlist,
        cores,
    }
}

/// Adds one core's cache-like bank: `regs` × `width` storage cells
/// written from the core's existing `<prefix>wb<i>` writeback lines,
/// read through per-register selects onto a bus that is precharged on φ2
/// and restored by an output inverter — a register file dressed as a
/// small memory array.
fn cache_bank_into(
    b: &mut NetlistBuilder,
    prefix: &str,
    phi1: NodeId,
    phi2: NodeId,
    regs: usize,
    width: usize,
) {
    let p = prefix;
    // Write data: the core's writeback lines (already driven by the
    // core's super buffers — `node` resolves the existing nodes).
    let wb: Vec<NodeId> = (0..width).map(|i| b.node(format!("{p}wb{i}"))).collect();
    let rd: Vec<NodeId> = (0..regs).map(|r| b.input(format!("{p}crd{r}"))).collect();
    // Qualified write clocks, same idiom as the core register file.
    let wq: Vec<NodeId> = (0..regs)
        .map(|r| {
            let we = b.input(format!("{p}cwe{r}"));
            let nq = b.node(format!("{p}cwqbar{r}"));
            b.nand(format!("{p}cwqgate{r}"), &[we, phi1], nq);
            let wq = b.node(format!("{p}cwq{r}"));
            b.inverter(format!("{p}cwqinv{r}"), nq, wq);
            wq
        })
        .collect();
    let bus = regfile_into(b, &format!("{p}cache"), phi1, phi2, &wb, regs, &rd, &wq);
    for (i, &line) in bus.iter().enumerate() {
        b.precharge(format!("{p}cpre{i}"), phi2, line);
        let q = b.node(format!("{p}cq{i}"));
        b.inverter(format!("{p}crcv{i}"), line, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_netlist::validate;

    #[test]
    fn two_core_design_elaborates_and_validates() {
        let mc = t6_mips_mc(Tech::nmos4um(), 2);
        assert_eq!(mc.cores, 2);
        assert_eq!(mc.netlist.clocks().len(), 2);
        let issues = validate::check(&mc.netlist);
        assert!(issues.is_empty(), "{issues:?}");
        // Cores are wired, not just tiled: core 1's cache reads from core
        // 1's writeback lines.
        assert!(mc.netlist.node_by_name("c1_cache_bus0").is_some());
        assert!(mc.netlist.node_by_name("c1_wb0").is_some());
    }

    #[test]
    fn per_core_device_count_supports_the_million_device_constant() {
        let d1 = t6_mips_mc(Tech::nmos4um(), 1).netlist.device_count();
        let d2 = t6_mips_mc(Tech::nmos4um(), 2).netlist.device_count();
        let per_core = d2 - d1; // marginal cost of one core, rail-free
        assert!(
            (13_000..=17_000).contains(&per_core),
            "per-core device count drifted: {per_core}"
        );
        // The committed constant really is the smallest million-device
        // core count for this per-core cost.
        assert!(d1 + (MILLION_DEVICE_CORES - 1) * per_core > 1_000_000);
        assert!(d1 + (MILLION_DEVICE_CORES - 2) * per_core <= 1_000_000);
    }

    #[test]
    fn cores_share_global_clocks() {
        let mc = t6_mips_mc(Tech::nmos4um(), 2);
        assert_eq!(mc.netlist.node_name(mc.phi1), "phi1");
        assert_eq!(mc.netlist.node_name(mc.phi2), "phi2");
        // No per-core clock nodes exist.
        assert!(mc.netlist.node_by_name("c0_phi1").is_none());
    }
}
