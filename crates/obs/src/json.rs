//! A minimal, dependency-free JSON reader.
//!
//! Exists so `tv trace-check` and the obs test-suite can validate the
//! profiler's own output (Chrome trace files, metrics dumps) without
//! pulling a serde stack into an offline workspace. It is a strict
//! recursive-descent parser over the JSON grammar — adequate for
//! machine-written documents; it is not meant as a general-purpose
//! library and keeps no source locations beyond a byte offset.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys are kept in sorted order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as f64.
    Num(f64),
    /// A string literal with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object member `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses `text` as one JSON document (surrounded by optional
/// whitespace). Returns a message with a byte offset on malformed
/// input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser {
        bytes,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Maximum container nesting [`parse`] accepts. The parser is
/// recursive-descent, so without a cap a hostile `[[[[…` document
/// overflows the stack and aborts the process instead of returning
/// `Err`; no machine-written trace or metrics dump comes anywhere near
/// this depth.
const MAX_DEPTH: usize = 200;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn nested(
        &mut self,
        container: fn(&mut Self) -> Result<Value, String>,
    ) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.depth += 1;
        let v = container(self);
        self.depth -= 1;
        v
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogates are not paired here; the profiler
                            // never emits them. Map to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8 in string".to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e1], "b": {"c": "x\ny"}, "d": null, "e": true}"#)
            .expect("parse");
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-30.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("'single'").is_err());
    }

    #[test]
    fn rejects_hostile_nesting_instead_of_overflowing() {
        // Without the depth cap this recursed once per byte and blew
        // the stack (an abort, not an Err) — the `tv trace-check` panic.
        let deep = "[".repeat(100_000);
        let err = parse(&deep).expect_err("must reject");
        assert!(err.contains("nesting too deep"), "{err}");
        let mixed = "{\"a\":".repeat(50_000) + "1" + &"}".repeat(50_000);
        assert!(parse(&mixed).is_err());
        // Depth just under the cap still parses.
        let ok = "[".repeat(150) + "1" + &"]".repeat(150);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn escape_round_trips() {
        let raw = "line1\nline2\t\"quoted\" \\ end";
        let doc = format!("{{\"k\": \"{}\"}}", escape(raw));
        let v = parse(&doc).expect("parse");
        assert_eq!(v.get("k").unwrap().as_str(), Some(raw));
    }
}
