//! The deterministic counter plane.
//!
//! A fixed registry of named `u64` counters, held as process-global
//! atomics. Instrumented code calls [`add`]/[`incr`]; both are no-ops
//! (one relaxed load and an untaken branch) until [`set_enabled`] turns
//! the plane on, so the disabled hot path costs nothing measurable.
//!
//! Determinism is structural: every counter records an *amount of
//! algorithmic work*, call sites accumulate locally (the per-thread
//! shard) and publish one [`add`] at a merge point, and atomic addition
//! commutes — so the totals are bit-identical no matter how worker
//! threads interleave. No counter ever records a time, an address, or a
//! thread id; wall-clock belongs to the span plane
//! ([`crate::spans`]) and is never mixed in here.
//!
//! Counters come in two planes (see [`Counter::is_work`]):
//!
//! * **work** — measures of the algorithmic work actually performed
//!   (arc relaxations, residue pops, nodes finished, cone seeds). The
//!   engine guarantees these are bit-identical across `--jobs` counts
//!   for a fixed command sequence. A warm run taking the demand-driven
//!   cone path legitimately records *less* work than the cold run —
//!   that shrinkage is the whole point of incremental propagation —
//!   but for a given sequence of edits the totals never depend on the
//!   worker schedule.
//! * **telemetry** — measures of how the run was satisfied (cache
//!   hits, pass skips, parse statistics). Deterministic for a fixed
//!   command sequence, but a warm run legitimately differs from a cold
//!   one — that difference is the signal.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Every counter the subsystem knows, in dump order. The enum is the
/// registry: adding a counter means adding a variant, its name, and its
/// plane — nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Arc relaxations performed (or charged on reuse) by propagation.
    PropagateRelaxations,
    /// Worklist pops of the residue (cyclic) relaxation.
    PropagateResiduePops,
    /// Nodes finished by propagation (evaluated or cache-copied), i.e.
    /// in-arc CSR rows touched by the arrival walk.
    PropagateNodes,
    /// Propagation cases finished (combinational + per-phase).
    PropagateCases,
    /// Dirty seed nodes handed to the demand-driven cone engine.
    ConeSeeds,
    /// Nodes re-relaxed by the cone engine (the affected fanout cone).
    ConeNodes,
    /// Warm passes that fell back from the cone engine to a full walk
    /// (cone too large, residue present, or a deadline guard armed).
    ConeFallbacks,
    /// Sweeps the flow fixpoint took to stabilize.
    FlowSweeps,
    /// Worklist examinations inside the flow fixpoint.
    FlowWorklistPops,
    /// Devices classified as pass transistors by flow analysis.
    FlowPassDevices,
    /// Pass devices the rules oriented to a definite direction.
    FlowOriented,
    /// Timing graphs built from scratch.
    GraphBuilds,
    /// Timing arcs synthesized by graph builds.
    GraphArcs,
    /// Stage roots resynthesized in place by graph splices.
    GraphRootsSpliced,
    /// Lines read by the `.sim` parser (including blank and comment).
    ParseLines,
    /// Devices accepted by the `.sim` parser.
    ParseDevices,
    /// Diagnostics constructed anywhere in the pipeline.
    DiagnosticsEmitted,
    /// Pipeline passes that ran from scratch.
    PassComputed,
    /// Pipeline passes skipped because their input fingerprint matched.
    PassReused,
    /// Graph passes satisfied by an in-place splice.
    PassSpliced,
    /// Graph passes revalidated without touching an arc.
    PassRevalidated,
    /// Nodes whose arrivals the incremental cache served from snapshot.
    CacheNodesReused,
    /// Nodes the incremental cache had to re-evaluate (the dirty cone).
    CacheNodesRecomputed,
    /// Cases served entirely by the snapshot fast path (zero re-hash).
    CacheCaseHits,
    /// Cases that required fingerprinting or full propagation.
    CacheCaseMisses,
    /// Electrical-check issues found.
    CheckIssues,
    /// Session commands evaluated.
    SessionCommands,
    /// Faults injected by an armed `tv_fault` plan.
    FaultInjected,
    /// Commands the session supervisor retried after a recoverable
    /// failure (transient I/O, worker panic, internal error).
    FaultRetries,
    /// Degraded recoveries: parallel work recomputed serially after a
    /// worker panic, or a corrupt certificate recomputed cold.
    FaultDegraded,
    /// Journal entries replayed through the edit API on `--resume`.
    FaultJournalReplays,
    /// Chunks the `.sim` ingest path split its input into (1 = serial).
    IngestChunks,
    /// Bytes of `.sim` text swept by the ingest pre-scan.
    IngestBytes,
    /// Name-token upper bound the pre-scan sized the intern table for.
    IngestPrescanSyms,
    /// Growth reallocations the pre-sized ingest structures performed
    /// after the pre-scan reserve — asserted zero by the ingest gate.
    IngestReallocs,
    /// Deterministic peak-allocation estimate (bytes) the pre-scan
    /// derived for the netlist under construction.
    IngestPeakAllocEst,
    /// Stage equivalence classes the hierarchical extractor found.
    MacroClasses,
    /// Master stages fully analyzed (one per class, plus any root the
    /// extractor declined to instance).
    MacroAnalyzed,
    /// Stage instances served by copying a master's macromodel arc table
    /// instead of re-deriving the stage graph.
    MacroInstanced,
    /// Instances split out of their class by an edit (de-shared and
    /// re-analyzed individually).
    MacroDesplit,
    /// Connections the serving plane admitted (hello accepted).
    ServeAccepted,
    /// Connections admission control refused with a typed `busy` frame.
    ServeRejected,
    /// High-water mark of concurrently admitted sessions (via
    /// [`set_max`], not [`add`]).
    ServeActivePeak,
    /// Request frames the serving plane dispatched to a session.
    ServeRequests,
    /// Frame reads/writes the serving plane retried after a transient
    /// transport fault.
    ServeRetries,
}

/// Number of counters in the registry.
pub const COUNT: usize = Counter::ServeRetries as usize + 1;

/// All counters, in dump order.
pub const ALL: [Counter; COUNT] = [
    Counter::PropagateRelaxations,
    Counter::PropagateResiduePops,
    Counter::PropagateNodes,
    Counter::PropagateCases,
    Counter::ConeSeeds,
    Counter::ConeNodes,
    Counter::ConeFallbacks,
    Counter::FlowSweeps,
    Counter::FlowWorklistPops,
    Counter::FlowPassDevices,
    Counter::FlowOriented,
    Counter::GraphBuilds,
    Counter::GraphArcs,
    Counter::GraphRootsSpliced,
    Counter::ParseLines,
    Counter::ParseDevices,
    Counter::DiagnosticsEmitted,
    Counter::PassComputed,
    Counter::PassReused,
    Counter::PassSpliced,
    Counter::PassRevalidated,
    Counter::CacheNodesReused,
    Counter::CacheNodesRecomputed,
    Counter::CacheCaseHits,
    Counter::CacheCaseMisses,
    Counter::CheckIssues,
    Counter::SessionCommands,
    Counter::FaultInjected,
    Counter::FaultRetries,
    Counter::FaultDegraded,
    Counter::FaultJournalReplays,
    Counter::IngestChunks,
    Counter::IngestBytes,
    Counter::IngestPrescanSyms,
    Counter::IngestReallocs,
    Counter::IngestPeakAllocEst,
    Counter::MacroClasses,
    Counter::MacroAnalyzed,
    Counter::MacroInstanced,
    Counter::MacroDesplit,
    Counter::ServeAccepted,
    Counter::ServeRejected,
    Counter::ServeActivePeak,
    Counter::ServeRequests,
    Counter::ServeRetries,
];

impl Counter {
    /// The stable dotted name used in every dump format.
    pub fn name(self) -> &'static str {
        match self {
            Counter::PropagateRelaxations => "propagate.relaxations",
            Counter::PropagateResiduePops => "propagate.residue_pops",
            Counter::PropagateNodes => "propagate.nodes",
            Counter::PropagateCases => "propagate.cases",
            Counter::ConeSeeds => "cone.seeds",
            Counter::ConeNodes => "cone.nodes",
            Counter::ConeFallbacks => "cone.fallbacks",
            Counter::FlowSweeps => "flow.sweeps",
            Counter::FlowWorklistPops => "flow.worklist_pops",
            Counter::FlowPassDevices => "flow.pass_devices",
            Counter::FlowOriented => "flow.oriented",
            Counter::GraphBuilds => "graph.builds",
            Counter::GraphArcs => "graph.arcs",
            Counter::GraphRootsSpliced => "graph.roots_spliced",
            Counter::ParseLines => "parse.lines",
            Counter::ParseDevices => "parse.devices",
            Counter::DiagnosticsEmitted => "diag.emitted",
            Counter::PassComputed => "pass.computed",
            Counter::PassReused => "pass.reused",
            Counter::PassSpliced => "pass.spliced",
            Counter::PassRevalidated => "pass.revalidated",
            Counter::CacheNodesReused => "cache.nodes_reused",
            Counter::CacheNodesRecomputed => "cache.nodes_recomputed",
            Counter::CacheCaseHits => "cache.case_hits",
            Counter::CacheCaseMisses => "cache.case_misses",
            Counter::CheckIssues => "checks.issues",
            Counter::SessionCommands => "session.commands",
            Counter::FaultInjected => "fault.injected",
            Counter::FaultRetries => "fault.retries",
            Counter::FaultDegraded => "fault.degraded",
            Counter::FaultJournalReplays => "fault.journal_replays",
            Counter::IngestChunks => "ingest.chunks",
            Counter::IngestBytes => "ingest.bytes",
            Counter::IngestPrescanSyms => "ingest.prescan_syms",
            Counter::IngestReallocs => "ingest.reallocs",
            Counter::IngestPeakAllocEst => "ingest.peak_alloc_est",
            Counter::MacroClasses => "macro.classes",
            Counter::MacroAnalyzed => "macro.analyzed",
            Counter::MacroInstanced => "macro.instanced",
            Counter::MacroDesplit => "macro.desplit",
            Counter::ServeAccepted => "serve.accepted",
            Counter::ServeRejected => "serve.rejected",
            Counter::ServeActivePeak => "serve.active_peak",
            Counter::ServeRequests => "serve.requests",
            Counter::ServeRetries => "serve.retries",
        }
    }

    /// Whether the counter belongs to the **work** plane: bit-identical
    /// across `--jobs` counts for a fixed command sequence. A warm run
    /// served by the cone engine records less work than a cold one —
    /// legitimately — but never a schedule-dependent amount. Everything
    /// else is **telemetry**: still deterministic for a fixed command
    /// sequence, but reuse-dependent by design.
    pub fn is_work(self) -> bool {
        matches!(
            self,
            Counter::PropagateRelaxations
                | Counter::PropagateResiduePops
                | Counter::PropagateNodes
                | Counter::PropagateCases
                | Counter::ConeSeeds
                | Counter::ConeNodes
                | Counter::ConeFallbacks
                | Counter::MacroClasses
                | Counter::MacroAnalyzed
                | Counter::MacroInstanced
                | Counter::MacroDesplit
        )
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

// `AtomicU64` has no const Default; spell the array out via a const.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static VALUES: [AtomicU64; COUNT] = [ZERO; COUNT];

/// Whether the counter plane is recording. One relaxed load: this is
/// the check hot paths make before accumulating anything.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the counter plane on or off. Values persist across toggles;
/// use [`reset`] to zero them.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Adds `n` to a counter. No-op while the plane is disabled.
///
/// Call sites on hot paths should accumulate into a local (their
/// per-thread shard) and publish once per chunk or per run — the adds
/// commute, so totals are interleaving-independent.
#[inline]
pub fn add(c: Counter, n: u64) {
    if enabled() && n != 0 {
        VALUES[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Adds 1 to a counter. No-op while the plane is disabled.
#[inline]
pub fn incr(c: Counter) {
    if enabled() {
        VALUES[c as usize].fetch_add(1, Ordering::Relaxed);
    }
}

/// Raises a counter to at least `v` (a high-water mark, e.g.
/// `serve.active_peak`). `fetch_max` commutes just like addition, so
/// concurrent publishers still yield a schedule-independent total.
/// No-op while the plane is disabled.
#[inline]
pub fn set_max(c: Counter, v: u64) {
    if enabled() {
        VALUES[c as usize].fetch_max(v, Ordering::Relaxed);
    }
}

/// Zeroes every counter (the enabled flag is untouched).
pub fn reset() {
    for v in &VALUES {
        v.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of every counter: the mergeable value type the
/// dump formats and delta arithmetic work over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    values: [u64; COUNT],
}

// `[u64; N]: Default` stops at N = 32; the registry outgrew it.
impl Default for Snapshot {
    fn default() -> Self {
        Snapshot { values: [0; COUNT] }
    }
}

/// Captures the current counter values.
pub fn snapshot() -> Snapshot {
    let mut values = [0u64; COUNT];
    for (v, a) in values.iter_mut().zip(VALUES.iter()) {
        *v = a.load(Ordering::Relaxed);
    }
    Snapshot { values }
}

impl Snapshot {
    /// The value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c as usize]
    }

    /// Counter-wise `self - earlier` (saturating, so a reset between
    /// snapshots degrades to zeros instead of wrapping).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut values = [0u64; COUNT];
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.values[i].saturating_sub(earlier.values[i]);
        }
        Snapshot { values }
    }

    /// Counter-wise sum: merging another shard into this one.
    pub fn merge(&mut self, other: &Snapshot) {
        for (v, o) in self.values.iter_mut().zip(other.values.iter()) {
            *v += o;
        }
    }

    /// Whether the work-plane counters equal `other`'s — the invariant
    /// the determinism tests assert across `--jobs` counts.
    pub fn work_eq(&self, other: &Snapshot) -> bool {
        ALL.iter()
            .filter(|c| c.is_work())
            .all(|&c| self.get(c) == other.get(c))
    }

    /// The counter block as one JSON object with `"work"` and
    /// `"telemetry"` sub-objects, every counter present in registry
    /// order. No times, no floats: byte-stable across machines.
    pub fn render_json(&self) -> String {
        let group = |want_work: bool| {
            let mut s = String::new();
            for c in ALL.iter().filter(|c| c.is_work() == want_work) {
                if !s.is_empty() {
                    s.push(',');
                }
                s.push_str(&format!(r#""{}":{}"#, c.name(), self.get(*c)));
            }
            s
        };
        format!(
            r#"{{"work":{{{}}},"telemetry":{{{}}}}}"#,
            group(true),
            group(false)
        )
    }

    /// A human-readable two-column table of the nonzero counters,
    /// grouped into the work and telemetry planes.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for (title, want_work) in [("work", true), ("telemetry", false)] {
            let rows: Vec<&Counter> = ALL
                .iter()
                .filter(|c| c.is_work() == want_work && self.get(**c) != 0)
                .collect();
            if rows.is_empty() {
                continue;
            }
            out.push_str(&format!("{title} counters\n"));
            for c in rows {
                out.push_str(&format!("  {:<26} {:>14}\n", c.name(), self.get(*c)));
            }
        }
        if out.is_empty() {
            out.push_str("counters: all zero (plane disabled?)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counter tests mutate process-global state; serialize them against
    // each other (other test modules use disjoint counters or tolerate
    // concurrent increments).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_adds_are_dropped_and_enabled_adds_stick() {
        let _g = lock();
        set_enabled(false);
        let before = snapshot();
        add(Counter::GraphArcs, 17);
        assert_eq!(snapshot().since(&before).get(Counter::GraphArcs), 0);
        set_enabled(true);
        add(Counter::GraphArcs, 17);
        incr(Counter::GraphArcs);
        let delta = snapshot().since(&before);
        set_enabled(false);
        assert_eq!(delta.get(Counter::GraphArcs), 18);
    }

    #[test]
    fn concurrent_adds_merge_exactly() {
        let _g = lock();
        set_enabled(true);
        let before = snapshot();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    // The shard pattern: accumulate locally, publish once.
                    let mut local = 0u64;
                    for i in 0..1000u64 {
                        local += i % 7;
                    }
                    add(Counter::PropagateRelaxations, local);
                });
            }
        });
        let delta = snapshot().since(&before);
        set_enabled(false);
        let one: u64 = (0..1000u64).map(|i| i % 7).sum();
        assert_eq!(delta.get(Counter::PropagateRelaxations), 8 * one);
    }

    #[test]
    fn set_max_is_a_high_water_mark() {
        let _g = lock();
        set_enabled(false);
        let before = snapshot();
        set_max(Counter::ServeActivePeak, 9);
        assert_eq!(
            snapshot().since(&before).get(Counter::ServeActivePeak),
            0,
            "disabled set_max must be dropped"
        );
        set_enabled(true);
        set_max(Counter::ServeActivePeak, 3);
        set_max(Counter::ServeActivePeak, 7);
        set_max(Counter::ServeActivePeak, 5);
        let delta = snapshot().since(&before);
        set_enabled(false);
        assert_eq!(delta.get(Counter::ServeActivePeak), 7);
    }

    #[test]
    fn json_dump_lists_every_counter_once_in_registry_order() {
        let s = Snapshot::default();
        let json = s.render_json();
        for c in ALL {
            assert_eq!(
                json.matches(&format!(r#""{}":"#, c.name())).count(),
                1,
                "{} missing or duplicated",
                c.name()
            );
        }
        assert!(json.starts_with(r#"{"work":{"#));
        assert!(json.contains(r#""telemetry":{"#));
    }

    #[test]
    fn work_plane_comparison_ignores_telemetry() {
        let mut a = Snapshot::default();
        let mut b = Snapshot::default();
        a.values[Counter::PassReused as usize] = 5;
        assert!(a.work_eq(&b), "telemetry differences must not matter");
        b.values[Counter::PropagateRelaxations as usize] = 1;
        assert!(!a.work_eq(&b), "work differences must matter");
    }

    #[test]
    fn since_and_merge_are_inverse_shapes() {
        let mut a = Snapshot::default();
        a.values[0] = 10;
        let mut b = a;
        b.values[0] = 25;
        let d = b.since(&a);
        assert_eq!(d.values[0], 15);
        let mut m = a;
        m.merge(&d);
        assert_eq!(m, b);
        // Saturation: a "later" snapshot that is behind yields zero.
        assert_eq!(a.since(&b).values[0], 0);
    }

    #[test]
    fn table_elides_zeros() {
        let mut s = Snapshot::default();
        s.values[Counter::FlowSweeps as usize] = 3;
        let t = s.render_table();
        assert!(t.contains("flow.sweeps"));
        assert!(!t.contains("graph.arcs"));
    }
}
