//! `tv_obs` — the TV observability subsystem.
//!
//! Two strictly separated planes, after the measurement discipline in
//! Jouppi's original TV (whose outputs were per-run work statistics:
//! nodes, stages, cases analyzed):
//!
//! * **Deterministic counters** ([`counters`]) — amounts of algorithmic
//!   work (arc relaxations, worklist pops, cache hits, pass outcomes,
//!   diagnostics). Bit-identical across `--jobs` counts; the work-plane
//!   subset is additionally bit-identical across warm/cold runs. Safe
//!   to put in goldens, and `verify.sh` does.
//! * **Wall-clock spans** ([`spans`]) — scoped timers forming a
//!   pass/phase tree, rendered as a text profile or a Chrome
//!   trace-event file ([`trace`]). Never part of any golden.
//!
//! Both planes are process-global and **off by default**; a disabled
//! instrumentation site costs one relaxed atomic load, which keeps the
//! engine inside its bench-smoke regression gate. The CLI enables them
//! for `--profile`, `--trace`, and `--metrics`; the session enables
//! counters for the `metrics` command.
//!
//! The crate is dependency-free (it even carries its own small JSON
//! reader, [`json`], so trace validation works offline) and sits below
//! every other TV crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod json;
pub mod spans;
pub mod trace;

pub use counters::{add, incr, snapshot, Counter, Snapshot};
pub use spans::{span, SpanEvent, SpanGuard};

/// Enables or disables both planes at once (counters and spans).
pub fn set_all_enabled(on: bool) {
    counters::set_enabled(on);
    spans::set_enabled(on);
}
