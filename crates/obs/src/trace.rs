//! Chrome trace-event rendering and validation.
//!
//! [`render_chrome`] serializes recorded spans as a JSON object with a
//! `traceEvents` array of `"ph": "X"` (complete) events — the format
//! consumed by `chrome://tracing` and Perfetto. [`validate`] is the
//! inverse gate used by `tv trace-check` and CI: it re-parses a trace
//! file with the built-in [`crate::json`] reader and checks that every
//! event is well-formed and that spans nest properly per thread.

use crate::json::{self, Value};
use crate::spans::SpanEvent;

/// Renders spans as a Chrome trace-event JSON document.
///
/// Events are emitted in start order as `"X"` complete events with
/// microsecond `ts`/`dur`, a fixed `pid` of 1, and the span plane's
/// dense thread ordinal as `tid`.
pub fn render_chrome(events: &[SpanEvent]) -> String {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    // Parents share a start microsecond with their first child often
    // enough that ties must break outer-first for viewers to nest them.
    sorted.sort_by_key(|e| (e.start_us, e.depth));
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in sorted.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            json::escape(e.name),
            e.start_us,
            e.dur_us,
            e.tid
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Validates a Chrome trace-event document produced by
/// [`render_chrome`] (or anything structurally equivalent).
///
/// Checks, in order: the text parses as JSON; `traceEvents` exists and
/// is a non-empty array; every event has a string `name`, `"ph": "X"`,
/// and non-negative numeric `ts`/`dur`/`tid`; and per `tid`, events
/// nest strictly — any two either are disjoint in time or one encloses
/// the other. Returns the event count on success.
pub fn validate(text: &str) -> Result<usize, String> {
    let doc = json::parse(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("trace has no traceEvents array")?;
    if events.is_empty() {
        return Err("trace has zero events".to_string());
    }
    // (tid, start, end) per event, for the nesting check.
    let mut intervals: Vec<(u64, u64, u64)> = Vec::with_capacity(events.len());
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or(format!("event {i} has no string name"))?;
        let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
        if ph != "X" {
            return Err(format!("event {i} ({name}) has ph {ph:?}, expected \"X\""));
        }
        let num = |key: &str| -> Result<u64, String> {
            let n = e
                .get(key)
                .and_then(Value::as_num)
                .ok_or(format!("event {i} ({name}) has no numeric {key}"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("event {i} ({name}) has bad {key} {n}"));
            }
            Ok(n as u64)
        };
        let ts = num("ts")?;
        let dur = num("dur")?;
        let tid = num("tid")?;
        intervals.push((tid, ts, ts + dur));
    }
    // Per thread, sort by (start, -length) and walk with an enclosing
    // stack: each event must fit inside the innermost open interval.
    intervals.sort_by_key(|&(tid, start, end)| (tid, start, std::cmp::Reverse(end)));
    let mut stack: Vec<(u64, u64, u64)> = Vec::new();
    for &(tid, start, end) in &intervals {
        while let Some(&(top_tid, _, top_end)) = stack.last() {
            if top_tid != tid || top_end <= start {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(_, _, top_end)) = stack.last() {
            if end > top_end {
                return Err(format!(
                    "spans overlap without nesting on tid {tid}: \
                     [{start}, {end}) crosses an enclosing end at {top_end}"
                ));
            }
        }
        stack.push((tid, start, end));
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, tid: u32, depth: u32, start_us: u64, dur_us: u64) -> SpanEvent {
        SpanEvent {
            name,
            tid,
            depth,
            start_us,
            dur_us,
        }
    }

    #[test]
    fn render_then_validate_round_trips() {
        let events = vec![
            ev("analyze", 0, 0, 0, 100),
            ev("pass.flow", 0, 1, 0, 40),
            ev("pass.graph", 0, 1, 40, 60),
            ev("worker", 1, 0, 45, 10),
        ];
        let text = render_chrome(&events);
        assert_eq!(validate(&text).expect("valid"), 4);
    }

    #[test]
    fn validate_rejects_overlap_without_nesting() {
        let events = vec![ev("a", 0, 0, 0, 50), ev("b", 0, 0, 25, 50)];
        let text = render_chrome(&events);
        let err = validate(&text).expect_err("overlap must fail");
        assert!(err.contains("overlap"), "got: {err}");
    }

    #[test]
    fn overlap_on_distinct_threads_is_fine() {
        let events = vec![ev("a", 0, 0, 0, 50), ev("b", 1, 0, 25, 50)];
        let text = render_chrome(&events);
        assert_eq!(validate(&text).expect("valid"), 2);
    }

    #[test]
    fn validate_rejects_garbage_and_empty() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"traceEvents\": []}").is_err());
        assert!(validate("{\"traceEvents\": [{\"ph\": \"B\"}]}").is_err());
        assert!(
            validate("{\"traceEvents\": [{\"name\":\"x\",\"ph\":\"X\",\"ts\":0}]}").is_err(),
            "missing dur must fail"
        );
    }

    #[test]
    fn escaped_names_survive() {
        let events = vec![ev("weird \"name\"\n", 0, 0, 0, 5)];
        let text = render_chrome(&events);
        assert_eq!(validate(&text).expect("valid"), 1);
    }
}
