//! The wall-clock span plane.
//!
//! Scoped timers forming a tree per thread: [`span`] returns a guard
//! that records a [`SpanEvent`] when dropped. While the plane is
//! disabled (the default) a guard is a no-op and the only cost at an
//! instrumented site is one relaxed atomic load — hot paths stay
//! unperturbed, which the bench-smoke gate enforces.
//!
//! Spans record *where the nanoseconds went*; they never feed the
//! deterministic counter plane, never appear in goldens, and never
//! influence analysis results. Events carry microsecond timestamps
//! relative to the first enablement of the plane, plus a small dense
//! thread ordinal (not the OS thread id), so a trace is stable in
//! shape across runs even though durations vary.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One finished span: a node of the profile tree.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Static label, e.g. `pass.flow` or `session.analyze`.
    pub name: &'static str,
    /// Dense per-process thread ordinal (0 = first thread that ever
    /// opened a span, usually the main thread).
    pub tid: u32,
    /// Nesting depth on its thread at open time (0 = top level).
    pub depth: u32,
    /// Start, microseconds since the span clock's epoch.
    pub start_us: u64,
    /// Duration, microseconds. Both endpoints are truncated offsets
    /// from the same epoch, so nesting survives integer truncation
    /// (a child's end never exceeds its parent's); sub-microsecond
    /// spans legitimately collapse to zero width.
    pub dur_us: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static EVENTS: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static NEXT_TID: Mutex<u32> = Mutex::new(0);

thread_local! {
    static TID: Cell<Option<u32>> = const { Cell::new(None) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Whether the span plane is recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the span plane on or off. The first enablement pins the trace
/// epoch; recorded events persist across toggles until [`take_events`].
pub fn set_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn thread_ordinal() -> u32 {
    TID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let mut next = NEXT_TID.lock().unwrap_or_else(|e| e.into_inner());
            let id = *next;
            *next += 1;
            t.set(Some(id));
            id
        }
    })
}

/// An open span; records its event when dropped. Obtain via [`span`].
pub struct SpanGuard {
    live: Option<(&'static str, u32, u32, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((name, tid, depth, start)) = self.live.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let epoch = epoch();
        let start_us = start.duration_since(epoch).as_micros() as u64;
        let end_us = epoch.elapsed().as_micros() as u64;
        let dur_us = end_us.saturating_sub(start_us);
        let mut events = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
        events.push(SpanEvent {
            name,
            tid,
            depth,
            start_us,
            dur_us,
        });
    }
}

/// Opens a span named `name` on the current thread. While the plane is
/// disabled this returns an inert guard without touching a clock.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    let tid = thread_ordinal();
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    SpanGuard {
        live: Some((name, tid, depth, Instant::now())),
    }
}

/// Drains every recorded event, in completion order.
pub fn take_events() -> Vec<SpanEvent> {
    std::mem::take(&mut EVENTS.lock().unwrap_or_else(|e| e.into_inner()))
}

/// A by-name aggregate of recorded spans for the text profile table.
#[derive(Debug, Clone)]
pub struct SpanStat {
    /// Span label.
    pub name: &'static str,
    /// Number of completed spans with this label.
    pub count: usize,
    /// Sum of their durations, microseconds.
    pub total_us: u64,
    /// Minimum nesting depth the label was seen at (for tree-ish
    /// indentation in the summary table).
    pub min_depth: u32,
}

/// Aggregates events by name, ordered by first appearance.
pub fn aggregate(events: &[SpanEvent]) -> Vec<SpanStat> {
    let mut stats: Vec<SpanStat> = Vec::new();
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    // Outer-first on start ties: at microsecond resolution a parent and
    // its first child often share a start, and the parent should lead.
    sorted.sort_by_key(|e| (e.start_us, e.depth));
    for e in sorted {
        match stats.iter_mut().find(|s| s.name == e.name) {
            Some(s) => {
                s.count += 1;
                s.total_us += e.dur_us;
                s.min_depth = s.min_depth.min(e.depth);
            }
            None => stats.push(SpanStat {
                name: e.name,
                count: 1,
                total_us: e.dur_us,
                min_depth: e.depth,
            }),
        }
    }
    stats
}

/// Renders the profile summary: an indented span table (by label, in
/// first-start order) over the aggregate durations.
pub fn render_summary(events: &[SpanEvent]) -> String {
    let stats = aggregate(events);
    if stats.is_empty() {
        return "profile: no spans recorded\n".to_string();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>7} {:>12} {:>10}\n",
        "span", "count", "total ms", "mean us"
    ));
    for s in &stats {
        let label = format!("{}{}", "  ".repeat(s.min_depth as usize), s.name);
        out.push_str(&format!(
            "{:<34} {:>7} {:>12.3} {:>10.1}\n",
            label,
            s.count,
            s.total_us as f64 / 1e3,
            s.total_us as f64 / s.count as f64
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the global event buffer; serialize and drain.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        set_enabled(false);
        let _ = take_events();
        {
            let _s = span("should-not-exist");
        }
        assert!(take_events().is_empty());
    }

    #[test]
    fn nested_spans_carry_depth_and_contain_each_other() {
        let _g = lock();
        set_enabled(true);
        let _ = take_events();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                std::hint::black_box(0);
            }
        }
        set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 2);
        // Inner completes first.
        let inner = &events[0];
        let outer = &events[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
    }

    #[test]
    fn threads_get_distinct_ordinals() {
        let _g = lock();
        set_enabled(true);
        let _ = take_events();
        {
            let _a = span("main-side");
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _b = span("worker-side");
            });
        });
        set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 2);
        let main_tid = events.iter().find(|e| e.name == "main-side").unwrap().tid;
        let worker_tid = events.iter().find(|e| e.name == "worker-side").unwrap().tid;
        assert_ne!(main_tid, worker_tid);
    }

    #[test]
    fn aggregate_groups_by_name() {
        let events = vec![
            SpanEvent {
                name: "a",
                tid: 0,
                depth: 0,
                start_us: 0,
                dur_us: 10,
            },
            SpanEvent {
                name: "b",
                tid: 0,
                depth: 1,
                start_us: 2,
                dur_us: 3,
            },
            SpanEvent {
                name: "a",
                tid: 0,
                depth: 0,
                start_us: 20,
                dur_us: 30,
            },
        ];
        let stats = aggregate(&events);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "a");
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].total_us, 40);
        assert_eq!(stats[1].name, "b");
        assert_eq!(stats[1].min_depth, 1);
        let table = render_summary(&events);
        assert!(table.contains('a') && table.contains("  b"));
    }
}
