//! The structural rules that orient pass transistors, individually
//! toggleable for ablation studies (experiment A2).

use std::fmt;

/// Which rule resolved a device's direction (for coverage statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Not a pass transistor: drivers flow from their rail into the stage
    /// by construction.
    Driver,
    /// A channel terminal on a primary input or clock is an upstream end.
    External,
    /// A channel terminal on a restored or precharged node is an upstream
    /// end: restoring logic drives pass networks, never the reverse.
    RestoredDrive,
    /// Flow entering a node through an already-oriented device continues
    /// outward through this one.
    Chain,
    /// A terminal that is the device's only channel contact and that gates
    /// other logic (or is a primary output) is a downstream end — e.g. a
    /// latch storage node.
    Sink,
    /// The designer annotated the device's direction explicitly (TV
    /// accepted such hints for structures its rules could not orient).
    Seed,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::Driver => "driver",
            Rule::External => "external",
            Rule::RestoredDrive => "restored",
            Rule::Chain => "chain",
            Rule::Sink => "sink",
            Rule::Seed => "seed",
        };
        f.write_str(s)
    }
}

/// Which of the pass-orientation rules are enabled.
///
/// [`RuleSet::all`] is the analyzer's normal configuration; disabling
/// rules one at a time measures their contribution to resolution coverage.
///
/// # Example
///
/// ```
/// use tv_flow::RuleSet;
///
/// let no_sink = RuleSet { sink: false, ..RuleSet::all() };
/// assert!(no_sink.external && !no_sink.sink);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    /// Enable [`Rule::External`].
    pub external: bool,
    /// Enable [`Rule::RestoredDrive`].
    pub restored: bool,
    /// Enable [`Rule::Chain`].
    pub chain: bool,
    /// Enable [`Rule::Sink`].
    pub sink: bool,
}

impl RuleSet {
    /// Every rule enabled — the normal analyzer configuration.
    pub fn all() -> Self {
        RuleSet {
            external: true,
            restored: true,
            chain: true,
            sink: true,
        }
    }

    /// Every rule disabled — pass directions stay unresolved; useful as an
    /// ablation baseline.
    pub fn none() -> Self {
        RuleSet {
            external: false,
            restored: false,
            chain: false,
            sink: false,
        }
    }

    /// Returns `self` with the named rule disabled (for ablation sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `rule` is [`Rule::Driver`], which is not toggleable.
    pub fn without(mut self, rule: Rule) -> Self {
        match rule {
            Rule::External => self.external = false,
            Rule::RestoredDrive => self.restored = false,
            Rule::Chain => self.chain = false,
            Rule::Sink => self.sink = false,
            Rule::Driver => panic!("the driver rule is structural and cannot be disabled"),
            Rule::Seed => panic!("seeds are annotations, not a rule to disable"),
        }
        self
    }
}

impl Default for RuleSet {
    fn default() -> Self {
        Self::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_none_are_opposites() {
        let a = RuleSet::all();
        let n = RuleSet::none();
        assert!(a.external && a.restored && a.chain && a.sink);
        assert!(!(n.external || n.restored || n.chain || n.sink));
    }

    #[test]
    fn without_disables_exactly_one() {
        let r = RuleSet::all().without(Rule::Chain);
        assert!(!r.chain);
        assert!(r.external && r.restored && r.sink);
    }

    #[test]
    #[should_panic(expected = "driver rule")]
    fn driver_is_not_toggleable() {
        let _ = RuleSet::all().without(Rule::Driver);
    }

    #[test]
    fn default_is_all() {
        assert_eq!(RuleSet::default(), RuleSet::all());
    }

    #[test]
    fn rules_display_names() {
        assert_eq!(Rule::Sink.to_string(), "sink");
        assert_eq!(Rule::RestoredDrive.to_string(), "restored");
    }
}
