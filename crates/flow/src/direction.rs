//! The signal-flow direction fixpoint.

use tv_netlist::{codes, DeviceId, Diagnostic, Netlist, NodeId, NodeRole};

use crate::classify::{classify, DeviceRole, NodeClass};
use crate::rules::{Rule, RuleSet};
use crate::stage::Stages;
use crate::FlowReport;

/// The resolved flow direction of one transistor's channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// No rule could orient the device; the analyzer must treat it
    /// conservatively (both directions) and flag it.
    Unresolved,
    /// Signal flows through the channel *into* the given node (which is one
    /// of the device's channel terminals).
    Toward(NodeId),
    /// Evidence for both directions — a genuine bidirectional structure
    /// such as a shared bus coupler.
    Bidirectional,
}

impl Direction {
    /// Whether the device ended up with a single direction.
    #[inline]
    pub fn is_oriented(self) -> bool {
        matches!(self, Direction::Toward(_))
    }
}

/// The complete result of flow analysis over one netlist.
///
/// Produced by [`crate::analyze`]; owns the stage partition, the
/// classification tables, and the per-device directions, which downstream
/// crates (RC modeling, the timing analyzer proper) consume.
#[derive(Debug, Clone)]
pub struct FlowAnalysis {
    stages: Stages,
    device_roles: Vec<DeviceRole>,
    node_classes: Vec<NodeClass>,
    directions: Vec<Direction>,
    resolved_by: Vec<Option<Rule>>,
    sweeps: usize,
}

impl FlowAnalysis {
    /// Runs stages → classification → direction fixpoint.
    pub fn run(netlist: &Netlist, rules: &RuleSet) -> Self {
        Self::run_with_seeds(netlist, rules, &[])
    }

    /// Like [`FlowAnalysis::run`], with designer-supplied direction
    /// annotations applied before the rules: each `(device, downstream)`
    /// pair fixes that device's flow toward the given channel terminal.
    /// Seeded directions participate in the fixpoint (chains continue
    /// from them) and are reported as resolved by [`Rule::Seed`].
    ///
    /// # Panics
    ///
    /// Panics if a seed names a node that is not one of its device's
    /// channel terminals.
    pub fn run_with_seeds(
        netlist: &Netlist,
        rules: &RuleSet,
        seeds: &[(DeviceId, NodeId)],
    ) -> Self {
        let _span = tv_obs::span("flow.analyze");
        let stages = Stages::build(netlist);
        let c = classify(netlist);
        let n_dev = netlist.device_count();
        let mut directions = vec![Direction::Unresolved; n_dev];
        let mut resolved_by: Vec<Option<Rule>> = vec![None; n_dev];

        orient_drivers(netlist, &c.device_roles, &mut directions, &mut resolved_by);
        for &(dev, downstream) in seeds {
            let d = netlist.device(dev);
            assert!(
                d.channel_touches(downstream),
                "seed for {} names {}, not one of its channel terminals",
                d.name(),
                downstream
            );
            directions[dev.index()] = Direction::Toward(downstream);
            resolved_by[dev.index()] = Some(Rule::Seed);
        }
        let sweeps = orient_pass_devices(
            netlist,
            &c.device_roles,
            &c.node_classes,
            rules,
            &mut directions,
            &mut resolved_by,
        );

        let pass_devices = c
            .device_roles
            .iter()
            .filter(|r| **r == DeviceRole::Pass)
            .count();
        let oriented = directions
            .iter()
            .zip(c.device_roles.iter())
            .filter(|(d, r)| **r == DeviceRole::Pass && d.is_oriented())
            .count();
        tv_obs::add(tv_obs::Counter::FlowPassDevices, pass_devices as u64);
        tv_obs::add(tv_obs::Counter::FlowOriented, oriented as u64);

        FlowAnalysis {
            stages,
            device_roles: c.device_roles,
            node_classes: c.node_classes,
            directions,
            resolved_by,
            sweeps,
        }
    }

    /// The stage partition computed for the netlist.
    #[inline]
    pub fn stages(&self) -> &Stages {
        &self.stages
    }

    /// The inferred role of a device.
    #[inline]
    pub fn device_role(&self, id: DeviceId) -> DeviceRole {
        self.device_roles[id.index()]
    }

    /// The inferred class of a node.
    #[inline]
    pub fn node_class(&self, id: NodeId) -> NodeClass {
        self.node_classes[id.index()]
    }

    /// The resolved direction of a device.
    #[inline]
    pub fn direction(&self, id: DeviceId) -> Direction {
        self.directions[id.index()]
    }

    /// Which rule resolved the device, if any.
    #[inline]
    pub fn resolved_by(&self, id: DeviceId) -> Option<Rule> {
        self.resolved_by[id.index()]
    }

    /// Number of sweeps the fixpoint took to stabilize.
    #[inline]
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// For an oriented device, `(upstream, downstream)` channel terminals.
    pub fn flow_endpoints(&self, netlist: &Netlist, id: DeviceId) -> Option<(NodeId, NodeId)> {
        match self.directions[id.index()] {
            Direction::Toward(dst) => {
                let d = netlist.device(id);
                Some((d.other_channel_end(dst), dst))
            }
            _ => None,
        }
    }

    /// Summarizes resolution coverage for reporting (experiment T2/A2).
    pub fn report(&self, netlist: &Netlist) -> FlowReport {
        FlowReport::from_analysis(self, netlist)
    }

    /// Chip inventory by inferred class (the statistics table of the era).
    pub fn census(&self) -> crate::classify::Census {
        crate::classify::Census::new(&crate::classify::Classification {
            device_roles: self.device_roles.clone(),
            node_classes: self.node_classes.clone(),
        })
    }

    /// Iterates over the pass devices that remain unresolved.
    pub fn unresolved<'a>(&'a self, netlist: &'a Netlist) -> impl Iterator<Item = DeviceId> + 'a {
        netlist
            .devices()
            .filter(|dref| {
                self.device_roles[dref.id.index()] == DeviceRole::Pass
                    && self.directions[dref.id.index()] == Direction::Unresolved
            })
            .map(|dref| dref.id)
    }

    /// Direction-resolution findings as shared [`Diagnostic`]s: a
    /// [`codes::FLOW_UNRESOLVED`] warning per pass device no rule could
    /// orient (the analyzer falls back to treating it bidirectionally),
    /// and a [`codes::FLOW_BIDIRECTIONAL`] note per device the rules
    /// deliberately left two-way (bus couplers and the like). Empty — and
    /// allocation-free — on a fully oriented netlist.
    pub fn diagnostics(&self, netlist: &Netlist) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for dref in netlist.devices() {
            let i = dref.id.index();
            if self.device_roles[i] != DeviceRole::Pass {
                continue;
            }
            match self.directions[i] {
                Direction::Unresolved => out.push(Diagnostic::warning(
                    codes::FLOW_UNRESOLVED,
                    format!(
                        "pass transistor {} could not be oriented; \
                         both directions will be analyzed",
                        dref.device.name()
                    ),
                )),
                Direction::Bidirectional => out.push(Diagnostic::info(
                    codes::FLOW_BIDIRECTIONAL,
                    format!(
                        "pass transistor {} is genuinely bidirectional",
                        dref.device.name()
                    ),
                )),
                Direction::Toward(_) => {}
            }
        }
        out
    }
}

/// Orients every non-pass device: signal enters a stage from the rail side,
/// so flow is toward the non-rail terminal (for interior pull-down legs,
/// toward the terminal farther from GND).
fn orient_drivers(
    netlist: &Netlist,
    roles: &[DeviceRole],
    directions: &mut [Direction],
    resolved_by: &mut [Option<Rule>],
) {
    let vdd = netlist.vdd();
    let gnd = netlist.gnd();
    let gnd_dist = gnd_distances(netlist, roles);

    for dref in netlist.devices() {
        let d = dref.device;
        let i = dref.id.index();
        let dir = match roles[i] {
            DeviceRole::Pass => continue,
            DeviceRole::PullUp
            | DeviceRole::ActivePullUp
            | DeviceRole::Precharge
            | DeviceRole::EnhPullUp => {
                // Flow from VDD into the stage.
                if d.source() == vdd {
                    Direction::Toward(d.drain())
                } else if d.drain() == vdd {
                    Direction::Toward(d.source())
                } else {
                    // Depletion channel between internal nodes (stray);
                    // leave unresolved rather than guess.
                    continue;
                }
            }
            DeviceRole::PullDown => {
                if d.source() == gnd {
                    Direction::Toward(d.drain())
                } else if d.drain() == gnd {
                    Direction::Toward(d.source())
                } else {
                    // Interior series leg: toward the output, i.e. the
                    // terminal farther from GND in the pull-down network.
                    let ds = gnd_dist[d.source().index()];
                    let dd = gnd_dist[d.drain().index()];
                    match (ds, dd) {
                        (Some(a), Some(b)) if a < b => Direction::Toward(d.drain()),
                        (Some(a), Some(b)) if b < a => Direction::Toward(d.source()),
                        _ => continue,
                    }
                }
            }
        };
        directions[i] = dir;
        resolved_by[i] = Some(Rule::Driver);
    }
}

/// BFS distance from GND through pull-down devices, stopping (like the
/// classifier) at nothing — distances are only compared within one chain.
fn gnd_distances(netlist: &Netlist, roles: &[DeviceRole]) -> Vec<Option<u32>> {
    let mut dist = vec![None; netlist.node_count()];
    let gnd = netlist.gnd();
    dist[gnd.index()] = Some(0);
    let mut frontier = vec![gnd];
    while let Some(node) = frontier.pop() {
        let d0 = dist[node.index()].expect("frontier nodes have distances");
        for &did in netlist.node_devices(node).channel {
            if roles[did.index()] != DeviceRole::PullDown {
                continue;
            }
            let other = netlist.device(did).other_channel_end(node);
            if other == netlist.vdd() {
                continue;
            }
            if dist[other.index()].is_none() {
                dist[other.index()] = Some(d0 + 1);
                frontier.push(other);
            }
        }
    }
    dist
}

/// Drive strength of a node from the pass fixpoint's point of view.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Drive {
    /// No evidence signal ever arrives here.
    None,
    /// Signal arrives only through already-oriented pass devices; such a
    /// node can still absorb more inflow (a wired mux junction).
    Arrived,
    /// Statically driven: restored, precharged, or external. Two `Strong`
    /// ends facing each other through one channel are a genuine
    /// bidirectional coupler.
    Strong,
}

/// The pass-device fixpoint. Returns the number of sweeps to stabilize.
///
/// Direction goes from the stronger end to the weaker; two `Strong` ends
/// make the device [`Direction::Bidirectional`]; two merely-`Arrived` ends
/// stay [`Direction::Unresolved`] (flagged for the designer).
///
/// Implemented as a worklist rather than repeated whole-netlist sweeps:
/// each "round" holds only the devices whose terminal drive changed since
/// they were last examined, marked in a boolean membership array that an
/// ascending cursor walks — so they are examined in ascending device
/// order, the order the sweep engine used, for the cost of one flag test
/// per device instead of a rule evaluation. Because the rules are *not*
/// monotone in drive (the sink rule fires only while a terminal is still
/// [`Drive::None`], the external rule only below [`Drive::Strong`]), that
/// ordering is semantic, not cosmetic: a drive upgrade made while
/// examining device `cur` is visible to device `e` in the same round only
/// if `e > cur` — exactly the devices a sweep had not yet reached, and
/// exactly the flags still ahead of the cursor — otherwise `e` waits for
/// the next round. The returned sweep count likewise reproduces the sweep
/// engine's: rounds map 1:1 to sweeps, plus the final no-change sweep
/// that proved the fixpoint.
fn orient_pass_devices(
    netlist: &Netlist,
    roles: &[DeviceRole],
    classes: &[NodeClass],
    rules: &RuleSet,
    directions: &mut [Direction],
    resolved_by: &mut [Option<Rule>],
) -> usize {
    let mut drive = vec![Drive::None; netlist.node_count()];
    for id in netlist.node_ids() {
        if matches!(
            classes[id.index()],
            NodeClass::External | NodeClass::Restored | NodeClass::Precharged | NodeClass::Rail
        ) {
            drive[id.index()] = Drive::Strong;
        }
    }
    // Pre-oriented devices (drivers and seeds) already deliver signal to
    // their downstream ends; the chain rule continues from there.
    for dir in directions.iter() {
        if let Direction::Toward(dst) = dir {
            if drive[dst.index()] == Drive::None {
                drive[dst.index()] = Drive::Arrived;
            }
        }
    }

    let is_external =
        |n: NodeId| matches!(netlist.node(n).role(), NodeRole::Input | NodeRole::Clock(_));
    let is_sinklike = |n: NodeId| {
        let at = netlist.node_devices(n);
        at.channel.len() == 1
            && (!at.gated.is_empty() || netlist.node(n).role() == NodeRole::Output)
    };
    let upstream_rule = |n: NodeId| {
        if matches!(
            classes[n.index()],
            NodeClass::Restored | NodeClass::Precharged | NodeClass::External
        ) {
            Rule::RestoredDrive
        } else {
            Rule::Chain
        }
    };

    let n_dev = netlist.device_count();
    let mut in_current = vec![false; n_dev];
    let mut in_next = vec![false; n_dev];
    let mut pending = 0usize;
    // The first round is the first sweep: every unresolved pass device.
    for i in 0..n_dev {
        if roles[i] == DeviceRole::Pass && directions[i] == Direction::Unresolved {
            in_current[i] = true;
            pending += 1;
        }
    }
    let mut next: Vec<DeviceId> = Vec::new();

    let mut sweeps = 0;
    let mut pops = 0u64;
    loop {
        sweeps += 1;
        if pending == 0 {
            // A sweep over devices with unchanged terminals cannot
            // resolve anything: this is the engine's final quiet sweep.
            break;
        }
        let mut changed = false;
        let mut cursor = 0usize;
        while cursor < n_dev {
            if !in_current[cursor] {
                cursor += 1;
                continue;
            }
            let i = cursor;
            cursor += 1;
            in_current[i] = false;
            pending -= 1;
            pops += 1;
            if directions[i] != Direction::Unresolved {
                continue;
            }
            let id = DeviceId::from_index(i);
            let d = netlist.device(id);
            let (a, b) = (d.source(), d.drain());
            let (da, db) = (drive[a.index()], drive[b.index()]);

            // The rule cascade, in the sweep engine's exact order.
            let decision = if da == Drive::Strong && db == Drive::Strong {
                // Two static drivers facing each other: genuine coupler.
                Some((Direction::Bidirectional, Rule::RestoredDrive))
            } else if rules.external && is_external(a) && db < Drive::Strong {
                Some((Direction::Toward(b), Rule::External))
            } else if rules.external && is_external(b) && da < Drive::Strong {
                Some((Direction::Toward(a), Rule::External))
            } else if da > db
                && ((upstream_rule(a) == Rule::RestoredDrive && rules.restored)
                    || (upstream_rule(a) == Rule::Chain && rules.chain))
            {
                Some((Direction::Toward(b), upstream_rule(a)))
            } else if db > da
                && ((upstream_rule(b) == Rule::RestoredDrive && rules.restored)
                    || (upstream_rule(b) == Rule::Chain && rules.chain))
            {
                Some((Direction::Toward(a), upstream_rule(b)))
            } else if rules.sink && db == Drive::None && is_sinklike(b) {
                Some((Direction::Toward(b), Rule::Sink))
            } else if rules.sink && da == Drive::None && is_sinklike(a) {
                Some((Direction::Toward(a), Rule::Sink))
            } else {
                None
            };

            let Some((dir, rule)) = decision else {
                continue;
            };
            directions[i] = dir;
            resolved_by[i] = Some(rule);
            changed = true;
            if let Direction::Toward(dst) = dir {
                if drive[dst.index()] == Drive::None {
                    drive[dst.index()] = Drive::Arrived;
                    // Re-examine unresolved pass devices touching the
                    // upgraded node: still-ahead devices join this round
                    // (the sweep had not reached them yet), already-passed
                    // ones wait for the next.
                    for &e in netlist.node_devices(dst).channel {
                        let ei = e.index();
                        if roles[ei] != DeviceRole::Pass || directions[ei] != Direction::Unresolved
                        {
                            continue;
                        }
                        if ei > i {
                            if !in_current[ei] {
                                in_current[ei] = true;
                                pending += 1;
                            }
                        } else if !in_next[ei] {
                            in_next[ei] = true;
                            next.push(e);
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
        for e in next.drain(..) {
            in_next[e.index()] = false;
            in_current[e.index()] = true;
            pending += 1;
        }
    }
    tv_obs::add(tv_obs::Counter::FlowSweeps, sweeps as u64);
    tv_obs::add(tv_obs::Counter::FlowWorklistPops, pops);
    sweeps
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_netlist::{NetlistBuilder, Tech};

    fn builder() -> NetlistBuilder {
        NetlistBuilder::new(Tech::nmos4um())
    }

    fn find_dev(nl: &Netlist, name: &str) -> DeviceId {
        nl.devices()
            .find(|d| d.device.name() == name)
            .unwrap_or_else(|| panic!("no device named {name}"))
            .id
    }

    #[test]
    fn inverter_devices_flow_into_output() {
        let mut b = builder();
        let a = b.input("a");
        let out = b.output("out");
        let (pu, pd) = b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let f = FlowAnalysis::run(&nl, &RuleSet::all());
        assert_eq!(f.direction(pu), Direction::Toward(out));
        assert_eq!(f.direction(pd), Direction::Toward(out));
        assert_eq!(f.resolved_by(pu), Some(Rule::Driver));
    }

    #[test]
    fn nand_interior_flows_toward_output() {
        let mut b = builder();
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let out = b.node("out");
        b.nand("g", &[i0, i1], out);
        let nl = b.finish().unwrap();
        let f = FlowAnalysis::run(&nl, &RuleSet::all());
        // pd0 is the leg adjacent to the output; it must flow into `out`.
        let pd0 = find_dev(&nl, "g_pd0");
        assert_eq!(f.direction(pd0), Direction::Toward(out));
    }

    #[test]
    fn pass_chain_resolves_downstream() {
        let mut b = builder();
        let a = b.input("a");
        let phi = b.clock("phi", 0);
        let src = b.node("src");
        b.inverter("i", a, src);
        let n1 = b.node("n1");
        let n2 = b.node("n2");
        let qb = b.node("qb");
        b.pass("p1", phi, src, n1);
        b.pass("p2", phi, n1, n2);
        b.inverter("i2", n2, qb);
        let nl = b.finish().unwrap();
        let f = FlowAnalysis::run(&nl, &RuleSet::all());
        assert_eq!(f.direction(find_dev(&nl, "p1")), Direction::Toward(n1));
        assert_eq!(f.direction(find_dev(&nl, "p2")), Direction::Toward(n2));
        // p1 resolves off the restored source, p2 by chaining.
        assert_eq!(
            f.resolved_by(find_dev(&nl, "p1")),
            Some(Rule::RestoredDrive)
        );
        assert_eq!(f.resolved_by(find_dev(&nl, "p2")), Some(Rule::Chain));
    }

    #[test]
    fn input_fed_pass_uses_external_rule() {
        let mut b = builder();
        let d = b.input("d");
        let phi = b.clock("phi", 0);
        let qb = b.node("qb");
        b.dynamic_latch("l", phi, d, qb);
        let nl = b.finish().unwrap();
        let f = FlowAnalysis::run(&nl, &RuleSet::all());
        let p = find_dev(&nl, "l_pass");
        let store = nl.node_by_name("l_mem").unwrap();
        assert_eq!(f.direction(p), Direction::Toward(store));
        assert_eq!(f.resolved_by(p), Some(Rule::External));
    }

    #[test]
    fn sink_rule_alone_resolves_latch_from_unknown_source() {
        let mut b = builder();
        // Source side is an undriven internal node: only the sink rule can
        // orient the pass device.
        let mystery = b.node("mystery");
        let other = b.node("other");
        let ctl = b.node("ctl");
        b.pass("p0", ctl, other, mystery); // keep mystery non-sink
        let phi = b.clock("phi", 0);
        let qb = b.node("qb");
        let store = b.dynamic_latch("l", phi, mystery, qb);
        let nl = b.finish().unwrap();
        let only_sink = RuleSet {
            external: false,
            restored: false,
            chain: false,
            sink: true,
        };
        let f = FlowAnalysis::run(&nl, &only_sink);
        let p = find_dev(&nl, "l_pass");
        assert_eq!(f.direction(p), Direction::Toward(store));
        assert_eq!(f.resolved_by(p), Some(Rule::Sink));
    }

    #[test]
    fn two_drivers_meet_bidirectional() {
        let mut b = builder();
        let a = b.input("a");
        let c = b.input("c");
        let x = b.node("x");
        let y = b.node("y");
        b.inverter("i1", a, x);
        b.inverter("i2", a, y);
        b.pass("coupler", c, x, y);
        let nl = b.finish().unwrap();
        let f = FlowAnalysis::run(&nl, &RuleSet::all());
        assert_eq!(
            f.direction(find_dev(&nl, "coupler")),
            Direction::Bidirectional
        );
    }

    #[test]
    fn no_rules_leaves_pass_unresolved() {
        let mut b = builder();
        let a = b.input("a");
        let phi = b.clock("phi", 0);
        let src = b.node("src");
        let dst = b.node("dst");
        b.inverter("i", a, src);
        b.pass("p", phi, src, dst);
        let _tmp_z = b.node("z");
        b.inverter("i2", dst, _tmp_z);
        let nl = b.finish().unwrap();
        let f = FlowAnalysis::run(&nl, &RuleSet::none());
        assert_eq!(f.direction(find_dev(&nl, "p")), Direction::Unresolved);
        assert_eq!(f.unresolved(&nl).count(), 1);
    }

    #[test]
    fn mux_resolves_both_branches_onto_shared_node() {
        let mut b = builder();
        let a = b.input("a");
        let s0 = b.input("s0");
        let s1 = b.input("s1");
        let x0 = b.node("x0");
        let x1 = b.node("x1");
        let m = b.node("m");
        b.inverter("i0", a, x0);
        b.inverter("i1", a, x1);
        b.pass("p0", s0, x0, m);
        b.pass("p1", s1, x1, m);
        let _tmp_mb = b.node("mb");
        b.inverter("im", m, _tmp_mb);
        let nl = b.finish().unwrap();
        let f = FlowAnalysis::run(&nl, &RuleSet::all());
        assert_eq!(f.direction(find_dev(&nl, "p0")), Direction::Toward(m));
        assert_eq!(f.direction(find_dev(&nl, "p1")), Direction::Toward(m));
    }

    #[test]
    fn flow_endpoints_orders_upstream_downstream() {
        let mut b = builder();
        let d = b.input("d");
        let phi = b.clock("phi", 0);
        let qb = b.node("qb");
        b.dynamic_latch("l", phi, d, qb);
        let nl = b.finish().unwrap();
        let f = FlowAnalysis::run(&nl, &RuleSet::all());
        let p = find_dev(&nl, "l_pass");
        let store = nl.node_by_name("l_mem").unwrap();
        assert_eq!(f.flow_endpoints(&nl, p), Some((d, store)));
    }

    #[test]
    fn seed_orients_an_unresolvable_device_and_chains_continue() {
        let mut b = builder();
        let ctl = b.node("ctl");
        let x = b.node("x");
        let y = b.node("y");
        let z = b.node("z");
        // Two floating pass devices: nothing orients them without help.
        b.pass("p0", ctl, x, y);
        b.pass("p1", ctl, y, z);
        let nl = b.finish().unwrap();
        let f = FlowAnalysis::run(&nl, &RuleSet::all());
        assert_eq!(f.unresolved(&nl).count(), 2);

        // Seed the first device; the chain rule finishes the second.
        let p0 = find_dev(&nl, "p0");
        let f = FlowAnalysis::run_with_seeds(&nl, &RuleSet::all(), &[(p0, y)]);
        assert_eq!(f.direction(p0), Direction::Toward(y));
        assert_eq!(f.resolved_by(p0), Some(Rule::Seed));
        let p1 = find_dev(&nl, "p1");
        assert_eq!(f.direction(p1), Direction::Toward(z));
        assert_eq!(f.resolved_by(p1), Some(Rule::Chain));
        assert_eq!(f.unresolved(&nl).count(), 0);
    }

    #[test]
    #[should_panic(expected = "channel terminals")]
    fn seed_with_wrong_node_panics() {
        let mut b = builder();
        let ctl = b.node("ctl");
        let x = b.node("x");
        let y = b.node("y");
        b.pass("p0", ctl, x, y);
        let nl = b.finish().unwrap();
        let p0 = find_dev(&nl, "p0");
        // `ctl` is the gate, not a channel terminal.
        let _ = FlowAnalysis::run_with_seeds(&nl, &RuleSet::all(), &[(p0, ctl)]);
    }

    #[test]
    fn fixpoint_terminates_quickly_on_long_chain() {
        let mut b = builder();
        let a = b.input("a");
        let phi = b.clock("phi", 0);
        let src = b.node("src");
        b.inverter("i", a, src);
        let mut prev = src;
        for i in 0..40 {
            let next = b.node(format!("n{i}"));
            b.pass(format!("p{i}"), phi, prev, next);
            prev = next;
        }
        let _tmp_out = b.node("out");
        b.inverter("fin", prev, _tmp_out);
        let nl = b.finish().unwrap();
        let f = FlowAnalysis::run(&nl, &RuleSet::all());
        // Every pass device oriented; within-sweep propagation keeps the
        // sweep count far below the chain length.
        assert_eq!(f.unresolved(&nl).count(), 0);
        assert!(f.sweeps() <= 3, "took {} sweeps", f.sweeps());
    }
}
