//! Channel-connected components ("stages").
//!
//! Two nodes belong to the same stage when a transistor channel connects
//! them; the rails do not merge stages (everything touches VDD/GND). A
//! stage is the unit TV analyzed electrically: within a stage charge moves
//! through channels, between stages only through gates.

use tv_netlist::{DeviceId, Netlist, NodeId};

/// Identifier of a stage within a [`Stages`] partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageId(pub(crate) u32);

impl StageId {
    /// Dense index of this stage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One channel-connected component, borrowed out of the [`Stages`]
/// partition's flat CSR arrays.
#[derive(Debug, Clone, Copy)]
pub struct Stage<'a> {
    /// Non-rail nodes in this stage, sorted by id.
    pub nodes: &'a [NodeId],
    /// Devices whose channel lies inside this stage (touching at least one
    /// of its nodes), sorted by id.
    pub devices: &'a [DeviceId],
    /// Whether some device in the stage has a channel terminal on VDD.
    pub touches_vdd: bool,
    /// Whether some device in the stage has a channel terminal on GND.
    pub touches_gnd: bool,
}

impl Stage<'_> {
    /// Number of non-rail nodes in the stage.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the stage can restore logic levels (reaches both rails).
    #[inline]
    pub fn is_restoring(&self) -> bool {
        self.touches_vdd && self.touches_gnd
    }
}

/// A partition of a netlist's non-rail nodes into stages.
///
/// # Example
///
/// ```
/// use tv_netlist::{NetlistBuilder, Tech};
/// use tv_flow::stage::Stages;
///
/// # fn main() -> Result<(), tv_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(Tech::nmos4um());
/// let a = b.input("a");
/// let x = b.node("x");
/// let y = b.node("y");
/// b.inverter("i1", a, x); // stage 1: {x}
/// b.inverter("i2", x, y); // stage 2: {y} — gates don't merge stages
/// let nl = b.finish()?;
/// let stages = Stages::build(&nl);
/// assert_eq!(stages.len(), 2);
/// assert_ne!(stages.stage_of(x), stages.stage_of(y));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Stages {
    /// CSR offsets into [`Stages::stage_nodes`]: stage `s` owns
    /// `stage_nodes[node_starts[s] as usize..node_starts[s + 1] as usize]`.
    node_starts: Vec<u32>,
    /// All stage members, grouped by stage, sorted by id within a stage.
    stage_nodes: Vec<NodeId>,
    /// CSR offsets into [`Stages::stage_devs`], same scheme.
    dev_starts: Vec<u32>,
    /// All stage devices, grouped by stage, sorted by id within a stage.
    stage_devs: Vec<DeviceId>,
    /// Per stage: (touches VDD, touches GND).
    rails: Vec<(bool, bool)>,
    /// Per node: its stage, or `None` for rails and isolated nodes.
    stage_of: Vec<Option<StageId>>,
}

impl Stages {
    /// Computes the channel-connected components of a netlist by union-find
    /// over channel edges, skipping the rails. The partition is stored in
    /// CSR form — one flat member array plus offsets each for nodes and
    /// devices — built with the usual two counting passes instead of one
    /// pair of growing `Vec`s per stage.
    pub fn build(netlist: &Netlist) -> Self {
        let n = netlist.node_count();
        let mut uf = UnionFind::new(n);
        let vdd = netlist.vdd();
        let gnd = netlist.gnd();
        for dref in netlist.devices() {
            let d = dref.device;
            let s = d.source();
            let t = d.drain();
            if s != vdd && s != gnd && t != vdd && t != gnd {
                uf.union(s.index(), t.index());
            }
        }

        // Pass 1 over nodes: assign stage ids in first-encounter order
        // (iterating nodes by ascending id) and count members per stage.
        let mut root_to_stage: Vec<Option<StageId>> = vec![None; n];
        let mut stage_of: Vec<Option<StageId>> = vec![None; n];
        let mut node_counts: Vec<u32> = Vec::new();
        for id in netlist.node_ids() {
            if id == vdd || id == gnd {
                continue;
            }
            if netlist.node_devices(id).channel.is_empty() {
                continue; // gate-only or isolated node: not in any stage
            }
            let root = uf.find(id.index());
            let sid = match root_to_stage[root] {
                Some(sid) => sid,
                None => {
                    let sid = StageId(node_counts.len() as u32);
                    node_counts.push(0);
                    root_to_stage[root] = Some(sid);
                    sid
                }
            };
            node_counts[sid.index()] += 1;
            stage_of[id.index()] = Some(sid);
        }
        let n_stages = node_counts.len();

        // Pass 1 over devices: owner stage, per-stage device counts, and
        // rail contact flags.
        let owner_of = |d: &tv_netlist::Device| {
            let mut owner: Option<StageId> = None;
            for t in [d.source(), d.drain()] {
                if t == vdd || t == gnd {
                    continue;
                }
                owner = stage_of[t.index()];
                if owner.is_some() {
                    break;
                }
            }
            owner
        };
        let mut dev_counts: Vec<u32> = vec![0; n_stages];
        let mut rails: Vec<(bool, bool)> = vec![(false, false); n_stages];
        for dref in netlist.devices() {
            let d = dref.device;
            if let Some(sid) = owner_of(d) {
                dev_counts[sid.index()] += 1;
                let r = &mut rails[sid.index()];
                r.0 |= d.source() == vdd || d.drain() == vdd;
                r.1 |= d.source() == gnd || d.drain() == gnd;
            }
        }

        // Prefix sums, then the cursor passes. Filling in ascending
        // node/device id keeps every per-stage slice sorted by id.
        let mut node_starts = vec![0u32; n_stages + 1];
        let mut dev_starts = vec![0u32; n_stages + 1];
        for s in 0..n_stages {
            node_starts[s + 1] = node_starts[s] + node_counts[s];
            dev_starts[s + 1] = dev_starts[s] + dev_counts[s];
        }
        let mut stage_nodes = vec![NodeId::from_index(0); node_starts[n_stages] as usize];
        let mut stage_devs = vec![DeviceId::from_index(0); dev_starts[n_stages] as usize];
        let mut node_cursor = node_starts.clone();
        for id in netlist.node_ids() {
            if let Some(sid) = stage_of[id.index()] {
                let c = &mut node_cursor[sid.index()];
                stage_nodes[*c as usize] = id;
                *c += 1;
            }
        }
        let mut dev_cursor = dev_starts.clone();
        for dref in netlist.devices() {
            if let Some(sid) = owner_of(dref.device) {
                let c = &mut dev_cursor[sid.index()];
                stage_devs[*c as usize] = dref.id;
                *c += 1;
            }
        }

        Stages {
            node_starts,
            stage_nodes,
            dev_starts,
            stage_devs,
            rails,
            stage_of,
        }
    }

    /// Number of stages.
    #[inline]
    pub fn len(&self) -> usize {
        self.rails.len()
    }

    /// Whether the netlist has no stages at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rails.is_empty()
    }

    /// The stage containing `node`, if any (rails and gate-only nodes have
    /// none).
    #[inline]
    pub fn stage_of(&self, node: NodeId) -> Option<StageId> {
        self.stage_of[node.index()]
    }

    /// The stage with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this partition.
    #[inline]
    pub fn stage(&self, id: StageId) -> Stage<'_> {
        let s = id.index();
        Stage {
            nodes: &self.stage_nodes
                [self.node_starts[s] as usize..self.node_starts[s + 1] as usize],
            devices: &self.stage_devs[self.dev_starts[s] as usize..self.dev_starts[s + 1] as usize],
            touches_vdd: self.rails[s].0,
            touches_gnd: self.rails[s].1,
        }
    }

    /// Iterates over all stages with their ids.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (StageId, Stage<'_>)> + '_ {
        (0..self.len()).map(|i| (StageId(i as u32), self.stage(StageId(i as u32))))
    }

    /// A canonical **structural hash** per stage: the grouping key of the
    /// hierarchical macromodel extractor.
    ///
    /// The hash is a commutative (wrapping-sum) combination of
    /// per-element hashes, so it is **order-independent**: permuting the
    /// declaration order of a stage's devices or nodes — or instantiating
    /// the same bit-slice N times under different interned names — yields
    /// the same value. It covers only *local* structure, never identity:
    ///
    /// * the device multiset — kind, W and L bit patterns, and the
    ///   rail-ness of each channel terminal;
    /// * the boundary-pin signature — for every device gate, whether the
    ///   pin is internal to the stage and its node role; node names stay
    ///   out on purpose (interned [`tv_netlist::Symbol`]s differ between
    ///   instances of the same slice, the structure does not);
    /// * the node multiset — role tag and explicit extra capacitance of
    ///   every stage node.
    ///
    /// Equal hashes are a *candidate* grouping only: the extractor
    /// collision-checks candidates against a full canonical stage trace
    /// before sharing an analysis (see `tv_core`'s `macromodel`).
    /// Perturbing any device's W/L or any node's cap changes the hash.
    pub fn structural_hashes(&self, netlist: &Netlist) -> Vec<u64> {
        let vdd = netlist.vdd();
        let gnd = netlist.gnd();
        let rail_tag = |n: NodeId| -> u64 {
            if n == vdd {
                1
            } else if n == gnd {
                2
            } else {
                0
            }
        };
        let mut out = Vec::with_capacity(self.len());
        for (sid, stage) in self.iter() {
            let mut acc: u64 = 0x5111_57a6_e5d4_c1a9 ^ (stage.devices.len() as u64);
            for &did in stage.devices {
                let d = netlist.device(did);
                let kind_tag = match d.kind() {
                    tv_netlist::DeviceKind::Enhancement => 0u64,
                    tv_netlist::DeviceKind::Depletion => 1,
                };
                let mut h = sig_mix(0xd1, kind_tag);
                h = sig_mix(h, d.width().to_bits());
                h = sig_mix(h, d.length().to_bits());
                h = sig_mix(h, rail_tag(d.source()) << 2 | rail_tag(d.drain()));
                // Boundary-pin signature: the gate pin's locality and role,
                // over structural tags rather than interned names.
                let g = d.gate();
                let internal = self.stage_of(g) == Some(sid);
                h = sig_mix(h, (internal as u64) << 8 | node_role_tag(netlist, g));
                acc = acc.wrapping_add(sig_mix(h, 0x9e));
            }
            for &nid in stage.nodes {
                let mut h = sig_mix(0xb0, node_role_tag(netlist, nid));
                h = sig_mix(h, netlist.node(nid).extra_cap().to_bits());
                acc = acc.wrapping_add(sig_mix(h, 0x2f));
            }
            out.push(sig_mix(acc, stage.nodes.len() as u64));
        }
        out
    }
}

/// A small 64-bit mixer (splitmix64 finalizer over `h ^ v`) for the
/// structural hash; good diffusion, no external dependency.
fn sig_mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn node_role_tag(netlist: &Netlist, n: NodeId) -> u64 {
    use tv_netlist::NodeRole;
    match netlist.node(n).role() {
        NodeRole::Internal => 0,
        NodeRole::Input => 1,
        NodeRole::Output => 2,
        NodeRole::Clock(p) => 3 + p as u64,
        NodeRole::Vdd => 6,
        NodeRole::Gnd => 7,
    }
}

/// Minimal union-find with path halving and union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_netlist::{NetlistBuilder, Tech};

    fn builder() -> NetlistBuilder {
        NetlistBuilder::new(Tech::nmos4um())
    }

    #[test]
    fn inverter_is_one_restoring_stage() {
        let mut b = builder();
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        assert_eq!(st.len(), 1);
        let s = st.stage(st.stage_of(out).unwrap());
        assert!(s.is_restoring());
        assert_eq!(s.node_count(), 1);
        assert_eq!(s.devices.len(), 2);
    }

    #[test]
    fn gates_do_not_merge_stages() {
        let mut b = builder();
        let a = b.input("a");
        let x = b.node("x");
        let y = b.node("y");
        b.inverter("i1", a, x);
        b.inverter("i2", x, y);
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        assert_eq!(st.len(), 2);
        assert_ne!(st.stage_of(x), st.stage_of(y));
    }

    #[test]
    fn pass_transistor_merges_stages() {
        let mut b = builder();
        let a = b.input("a");
        let phi = b.clock("phi", 0);
        let x = b.node("x");
        let y = b.node("y");
        b.inverter("i1", a, x);
        b.pass("p", phi, x, y);
        let _tmp_z = b.node("z");
        b.inverter("i2", y, _tmp_z);
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        // x and y are channel-connected through the pass transistor.
        assert_eq!(st.stage_of(x), st.stage_of(y));
    }

    #[test]
    fn rails_never_merge_stages() {
        let mut b = builder();
        let a = b.input("a");
        let x = b.node("x");
        let y = b.node("y");
        // Two independent inverters both touch both rails.
        b.inverter("i1", a, x);
        b.inverter("i2", a, y);
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn nand_internal_node_shares_stage_with_output() {
        let mut b = builder();
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let out = b.node("out");
        b.nand("g", &[i0, i1], out);
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        assert_eq!(st.len(), 1);
        let internal = nl.node_by_name("g_s0").unwrap();
        assert_eq!(st.stage_of(out), st.stage_of(internal));
    }

    #[test]
    fn gate_only_input_is_in_no_stage() {
        let mut b = builder();
        let a = b.input("a");
        let out = b.node("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        assert_eq!(st.stage_of(a), None);
        assert_eq!(st.stage_of(nl.vdd()), None);
    }

    #[test]
    fn empty_netlist_has_no_stages() {
        let nl = builder().finish().unwrap();
        let st = Stages::build(&nl);
        assert!(st.is_empty());
    }

    #[test]
    fn stage_iter_covers_all_nodes_once() {
        let mut b = builder();
        let a = b.input("a");
        for i in 0..5 {
            let o = b.node(format!("o{i}"));
            b.inverter(format!("i{i}"), a, o);
        }
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        let total: usize = st.iter().map(|(_, s)| s.node_count()).sum();
        assert_eq!(total, 5);
        assert_eq!(st.iter().len(), st.len());
    }
}
