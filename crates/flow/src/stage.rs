//! Channel-connected components ("stages").
//!
//! Two nodes belong to the same stage when a transistor channel connects
//! them; the rails do not merge stages (everything touches VDD/GND). A
//! stage is the unit TV analyzed electrically: within a stage charge moves
//! through channels, between stages only through gates.

use tv_netlist::{DeviceId, Netlist, NodeId};

/// Identifier of a stage within a [`Stages`] partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageId(pub(crate) u32);

impl StageId {
    /// Dense index of this stage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One channel-connected component.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Non-rail nodes in this stage, sorted by id.
    pub nodes: Vec<NodeId>,
    /// Devices whose channel lies inside this stage (touching at least one
    /// of its nodes), sorted by id.
    pub devices: Vec<DeviceId>,
    /// Whether some device in the stage has a channel terminal on VDD.
    pub touches_vdd: bool,
    /// Whether some device in the stage has a channel terminal on GND.
    pub touches_gnd: bool,
}

impl Stage {
    /// Number of non-rail nodes in the stage.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the stage can restore logic levels (reaches both rails).
    #[inline]
    pub fn is_restoring(&self) -> bool {
        self.touches_vdd && self.touches_gnd
    }
}

/// A partition of a netlist's non-rail nodes into stages.
///
/// # Example
///
/// ```
/// use tv_netlist::{NetlistBuilder, Tech};
/// use tv_flow::stage::Stages;
///
/// # fn main() -> Result<(), tv_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(Tech::nmos4um());
/// let a = b.input("a");
/// let x = b.node("x");
/// let y = b.node("y");
/// b.inverter("i1", a, x); // stage 1: {x}
/// b.inverter("i2", x, y); // stage 2: {y} — gates don't merge stages
/// let nl = b.finish()?;
/// let stages = Stages::build(&nl);
/// assert_eq!(stages.len(), 2);
/// assert_ne!(stages.stage_of(x), stages.stage_of(y));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Stages {
    stages: Vec<Stage>,
    /// Per node: its stage, or `None` for rails and isolated nodes.
    stage_of: Vec<Option<StageId>>,
}

impl Stages {
    /// Computes the channel-connected components of a netlist by union-find
    /// over channel edges, skipping the rails.
    pub fn build(netlist: &Netlist) -> Self {
        let n = netlist.node_count();
        let mut uf = UnionFind::new(n);
        let vdd = netlist.vdd();
        let gnd = netlist.gnd();
        for dref in netlist.devices() {
            let d = dref.device;
            let s = d.source();
            let t = d.drain();
            if s != vdd && s != gnd && t != vdd && t != gnd {
                uf.union(s.index(), t.index());
            }
        }

        // Collect components over nodes that touch at least one channel.
        let mut root_to_stage: Vec<Option<StageId>> = vec![None; n];
        let mut stages: Vec<Stage> = Vec::new();
        let mut stage_of: Vec<Option<StageId>> = vec![None; n];

        for id in netlist.node_ids() {
            if id == vdd || id == gnd {
                continue;
            }
            if netlist.node_devices(id).channel.is_empty() {
                continue; // gate-only or isolated node: not in any stage
            }
            let root = uf.find(id.index());
            let sid = match root_to_stage[root] {
                Some(sid) => sid,
                None => {
                    let sid = StageId(stages.len() as u32);
                    stages.push(Stage {
                        nodes: Vec::new(),
                        devices: Vec::new(),
                        touches_vdd: false,
                        touches_gnd: false,
                    });
                    root_to_stage[root] = Some(sid);
                    sid
                }
            };
            stages[sid.index()].nodes.push(id);
            stage_of[id.index()] = Some(sid);
        }

        // Attach devices: a device belongs to the stage of its non-rail
        // channel terminal(s).
        for dref in netlist.devices() {
            let d = dref.device;
            let mut owner: Option<StageId> = None;
            for t in [d.source(), d.drain()] {
                if t == vdd || t == gnd {
                    continue;
                }
                owner = stage_of[t.index()];
                if owner.is_some() {
                    break;
                }
            }
            if let Some(sid) = owner {
                let st = &mut stages[sid.index()];
                st.devices.push(dref.id);
                if d.source() == vdd || d.drain() == vdd {
                    st.touches_vdd = true;
                }
                if d.source() == gnd || d.drain() == gnd {
                    st.touches_gnd = true;
                }
            }
        }

        Stages { stages, stage_of }
    }

    /// Number of stages.
    #[inline]
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the netlist has no stages at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage containing `node`, if any (rails and gate-only nodes have
    /// none).
    #[inline]
    pub fn stage_of(&self, node: NodeId) -> Option<StageId> {
        self.stage_of[node.index()]
    }

    /// The stage with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this partition.
    #[inline]
    pub fn stage(&self, id: StageId) -> &Stage {
        &self.stages[id.index()]
    }

    /// Iterates over all stages with their ids.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (StageId, &Stage)> + '_ {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, s)| (StageId(i as u32), s))
    }
}

/// Minimal union-find with path halving and union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_netlist::{NetlistBuilder, Tech};

    fn builder() -> NetlistBuilder {
        NetlistBuilder::new(Tech::nmos4um())
    }

    #[test]
    fn inverter_is_one_restoring_stage() {
        let mut b = builder();
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        assert_eq!(st.len(), 1);
        let s = st.stage(st.stage_of(out).unwrap());
        assert!(s.is_restoring());
        assert_eq!(s.node_count(), 1);
        assert_eq!(s.devices.len(), 2);
    }

    #[test]
    fn gates_do_not_merge_stages() {
        let mut b = builder();
        let a = b.input("a");
        let x = b.node("x");
        let y = b.node("y");
        b.inverter("i1", a, x);
        b.inverter("i2", x, y);
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        assert_eq!(st.len(), 2);
        assert_ne!(st.stage_of(x), st.stage_of(y));
    }

    #[test]
    fn pass_transistor_merges_stages() {
        let mut b = builder();
        let a = b.input("a");
        let phi = b.clock("phi", 0);
        let x = b.node("x");
        let y = b.node("y");
        b.inverter("i1", a, x);
        b.pass("p", phi, x, y);
        let _tmp_z = b.node("z");
        b.inverter("i2", y, _tmp_z);
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        // x and y are channel-connected through the pass transistor.
        assert_eq!(st.stage_of(x), st.stage_of(y));
    }

    #[test]
    fn rails_never_merge_stages() {
        let mut b = builder();
        let a = b.input("a");
        let x = b.node("x");
        let y = b.node("y");
        // Two independent inverters both touch both rails.
        b.inverter("i1", a, x);
        b.inverter("i2", a, y);
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn nand_internal_node_shares_stage_with_output() {
        let mut b = builder();
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let out = b.node("out");
        b.nand("g", &[i0, i1], out);
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        assert_eq!(st.len(), 1);
        let internal = nl.node_by_name("g_s0").unwrap();
        assert_eq!(st.stage_of(out), st.stage_of(internal));
    }

    #[test]
    fn gate_only_input_is_in_no_stage() {
        let mut b = builder();
        let a = b.input("a");
        let out = b.node("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        assert_eq!(st.stage_of(a), None);
        assert_eq!(st.stage_of(nl.vdd()), None);
    }

    #[test]
    fn empty_netlist_has_no_stages() {
        let nl = builder().finish().unwrap();
        let st = Stages::build(&nl);
        assert!(st.is_empty());
    }

    #[test]
    fn stage_iter_covers_all_nodes_once() {
        let mut b = builder();
        let a = b.input("a");
        for i in 0..5 {
            let o = b.node(format!("o{i}"));
            b.inverter(format!("i{i}"), a, o);
        }
        let nl = b.finish().unwrap();
        let st = Stages::build(&nl);
        let total: usize = st.iter().map(|(_, s)| s.node_count()).sum();
        assert_eq!(total, 5);
        assert_eq!(st.iter().len(), st.len());
    }
}
