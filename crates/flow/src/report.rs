//! Resolution-coverage statistics (experiments T2 and A2).

use std::fmt;

use tv_netlist::Netlist;

use crate::classify::DeviceRole;
use crate::direction::{Direction, FlowAnalysis};
use crate::rules::Rule;

/// Summary of how well the direction rules covered a netlist.
///
/// Produced by [`FlowAnalysis::report`]; printable as the row format used
/// by the T2/A2 report tables.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Total transistors in the netlist.
    pub devices: usize,
    /// Transistors classified as pass devices (the ones needing rules).
    pub pass_devices: usize,
    /// Pass devices oriented to a single direction.
    pub oriented: usize,
    /// Pass devices found genuinely bidirectional.
    pub bidirectional: usize,
    /// Pass devices no rule could orient.
    pub unresolved: usize,
    /// Of the oriented ones: resolved by the external rule.
    pub by_external: usize,
    /// Of the oriented ones: resolved by the restored-drive rule.
    pub by_restored: usize,
    /// Of the oriented ones: resolved by the chain rule.
    pub by_chain: usize,
    /// Of the oriented ones: resolved by the sink rule.
    pub by_sink: usize,
    /// Fixpoint sweeps to stabilize.
    pub sweeps: usize,
    /// Number of channel-connected stages.
    pub stages: usize,
}

impl FlowReport {
    pub(crate) fn from_analysis(analysis: &FlowAnalysis, netlist: &Netlist) -> Self {
        let mut r = FlowReport {
            devices: netlist.device_count(),
            pass_devices: 0,
            oriented: 0,
            bidirectional: 0,
            unresolved: 0,
            by_external: 0,
            by_restored: 0,
            by_chain: 0,
            by_sink: 0,
            sweeps: analysis.sweeps(),
            stages: analysis.stages().len(),
        };
        for dref in netlist.devices() {
            if analysis.device_role(dref.id) != DeviceRole::Pass {
                continue;
            }
            r.pass_devices += 1;
            match analysis.direction(dref.id) {
                Direction::Toward(_) => {
                    r.oriented += 1;
                    match analysis.resolved_by(dref.id) {
                        Some(Rule::External) => r.by_external += 1,
                        Some(Rule::RestoredDrive) => r.by_restored += 1,
                        Some(Rule::Chain) => r.by_chain += 1,
                        Some(Rule::Sink) => r.by_sink += 1,
                        _ => {}
                    }
                }
                Direction::Bidirectional => r.bidirectional += 1,
                Direction::Unresolved => r.unresolved += 1,
            }
        }
        r
    }

    /// Fraction of pass devices given a definite treatment (oriented or
    /// proven bidirectional), in [0, 1]. Reports 1.0 for netlists with no
    /// pass devices.
    pub fn coverage(&self) -> f64 {
        if self.pass_devices == 0 {
            1.0
        } else {
            (self.oriented + self.bidirectional) as f64 / self.pass_devices as f64
        }
    }
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "devices {}  stages {}  pass {}  oriented {} ({:.1}% coverage)",
            self.devices,
            self.stages,
            self.pass_devices,
            self.oriented,
            100.0 * self.coverage(),
        )?;
        writeln!(
            f,
            "  by rule: external {}  restored {}  chain {}  sink {}",
            self.by_external, self.by_restored, self.by_chain, self.by_sink
        )?;
        write!(
            f,
            "  bidirectional {}  unresolved {}  sweeps {}",
            self.bidirectional, self.unresolved, self.sweeps
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{analyze, RuleSet};
    use tv_netlist::{NetlistBuilder, Tech};

    #[test]
    fn report_counts_add_up() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let phi = b.clock("phi", 0);
        let src = b.node("src");
        b.inverter("i", a, src);
        let n1 = b.node("n1");
        let n2 = b.node("n2");
        b.pass("p1", phi, src, n1);
        b.pass("p2", phi, n1, n2);
        let _tmp_z = b.node("z");
        b.inverter("i2", n2, _tmp_z);
        let nl = b.finish().unwrap();
        let r = analyze(&nl, &RuleSet::all()).report(&nl);
        assert_eq!(r.pass_devices, 2);
        assert_eq!(r.oriented + r.bidirectional + r.unresolved, r.pass_devices);
        assert_eq!(
            r.by_external + r.by_restored + r.by_chain + r.by_sink,
            r.oriented
        );
        assert!((r.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_with_no_pass_devices_is_one() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let _tmp_x = b.node("x");
        b.inverter("i", a, _tmp_x);
        let nl = b.finish().unwrap();
        let r = analyze(&nl, &RuleSet::all()).report(&nl);
        assert_eq!(r.pass_devices, 0);
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn display_mentions_coverage() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let _tmp_x = b.node("x");
        b.inverter("i", a, _tmp_x);
        let nl = b.finish().unwrap();
        let r = analyze(&nl, &RuleSet::all()).report(&nl);
        let s = r.to_string();
        assert!(s.contains("coverage"));
        assert!(s.contains("sweeps"));
    }

    #[test]
    fn disabling_rules_lowers_coverage() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let phi = b.clock("phi", 0);
        let src = b.node("src");
        b.inverter("i", a, src);
        let mut prev = src;
        for i in 0..4 {
            let n = b.node(format!("n{i}"));
            b.pass(format!("p{i}"), phi, prev, n);
            prev = n;
        }
        let _tmp_out = b.node("out");
        b.inverter("fin", prev, _tmp_out);
        let nl = b.finish().unwrap();
        let full = analyze(&nl, &RuleSet::all()).report(&nl);
        let none = analyze(&nl, &RuleSet::none()).report(&nl);
        assert!(full.coverage() > none.coverage());
        assert_eq!(none.oriented, 0);
    }
}
