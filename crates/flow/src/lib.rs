//! Signal-flow analysis for nMOS pass-transistor networks.
//!
//! The hard problem a transistor-level timing analyzer must solve before it
//! can compute any delay is: **which way do signals flow?** A MOS channel
//! is electrically symmetric, and 1983-era nMOS chips used pass transistors
//! everywhere — latches, multiplexers, barrel shifters, bus couplers. TV
//! (Jouppi, DAC 1983) resolved direction *statically*, from structure
//! alone, and this crate reimplements that analysis:
//!
//! 1. [`stage`] — partition the netlist into **channel-connected
//!    components** ("stages"), the unit of electrical analysis;
//! 2. [`classify`] — assign every transistor a [`DeviceRole`] (pull-up,
//!    pull-down, pass, precharge, …) and every node a [`NodeClass`]
//!    (restored, storage, precharged, bus, …);
//! 3. [`direction`] — run a fixpoint of structural [`rules`] that orient
//!    each pass transistor, leaving the genuinely bidirectional (or
//!    unresolvable) ones flagged for the designer.
//!
//! # Example
//!
//! A dynamic latch: the pass transistor must be found to flow *into* the
//! storage node.
//!
//! ```
//! use tv_netlist::{NetlistBuilder, Tech};
//! use tv_flow::{analyze, Direction, RuleSet};
//!
//! # fn main() -> Result<(), tv_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new(Tech::nmos4um());
//! let phi = b.clock("phi1", 0);
//! let d = b.input("d");
//! let qb = b.output("qb");
//! b.dynamic_latch("lat", phi, d, qb);
//! let nl = b.finish()?;
//!
//! let flow = analyze(&nl, &RuleSet::all());
//! let store = nl.node_by_name("lat_mem").expect("storage node");
//! let pass = nl
//!     .devices()
//!     .find(|dr| dr.device.name() == "lat_pass")
//!     .unwrap()
//!     .id;
//! assert_eq!(flow.direction(pass), Direction::Toward(store));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod direction;
pub mod report;
pub mod rules;
pub mod stage;

pub use classify::{Census, DeviceRole, NodeClass};
pub use direction::{Direction, FlowAnalysis};
pub use report::FlowReport;
pub use rules::{Rule, RuleSet};
pub use stage::{Stage, StageId, Stages};

use tv_netlist::Netlist;

/// Runs the complete flow analysis: stages, classification, and the
/// direction fixpoint under the given rule set.
///
/// This is the convenience entry point; the pieces are independently
/// available in the submodules for ablation studies.
pub fn analyze(netlist: &Netlist, rules: &RuleSet) -> FlowAnalysis {
    FlowAnalysis::run(netlist, rules)
}

/// Like [`analyze`], with designer direction annotations — each
/// `(device, downstream-terminal)` pair pins that device's flow before the
/// rules run. TV accepted exactly such hints for the rare structures its
/// rules could not orient.
pub fn analyze_with_seeds(
    netlist: &Netlist,
    rules: &RuleSet,
    seeds: &[(tv_netlist::DeviceId, tv_netlist::NodeId)],
) -> FlowAnalysis {
    FlowAnalysis::run_with_seeds(netlist, rules, seeds)
}
