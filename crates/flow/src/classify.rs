//! Device-role and node-class inference.
//!
//! TV's node and transistor classification is what lets a timing analyzer
//! treat a raw transistor soup as logic: it must know that *this* depletion
//! device is a load, *that* enhancement device is the third leg of a NAND
//! pull-down, and *that other one* is a pass transistor feeding a dynamic
//! storage node. Everything here is inferred from structure alone.

use tv_netlist::{DeviceKind, Netlist, NodeId, NodeRole};

/// The inferred electrical role of a transistor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceRole {
    /// Depletion device wired as a classic load (gate tied to channel).
    PullUp,
    /// Depletion device with channel to VDD gated by another node — the
    /// output pull-up of a super buffer.
    ActivePullUp,
    /// Enhancement device in a gated path from a stage output to GND
    /// (including interior legs of series NAND chains).
    PullDown,
    /// Enhancement device with channel to VDD gated by a clock: precharges
    /// a dynamic node each cycle.
    Precharge,
    /// Enhancement device with channel to VDD gated by a signal: a source
    /// follower / enhancement pull-up (degraded high).
    EnhPullUp,
    /// Enhancement device whose channel connects two internal nodes and is
    /// not part of a pull-down network: a pass transistor.
    Pass,
}

impl DeviceRole {
    /// Whether this role participates in restoring a node to a rail.
    #[inline]
    pub fn is_driver(self) -> bool {
        !matches!(self, DeviceRole::Pass)
    }
}

/// The inferred class of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// A power rail.
    Rail,
    /// Externally driven: primary input or clock.
    External,
    /// Output of a restoring stage: actively pulled to both rails.
    Restored,
    /// Dynamic node refreshed by a precharge device and conditionally
    /// discharged — the nodes of precharged buses and domino-style logic.
    Precharged,
    /// Driven only through pass transistors and gating at least one device:
    /// a dynamic storage (latch) node.
    Storage,
    /// Interior node of a pass network or pull-down chain: neither stored
    /// from nor directly restored.
    PassInterior,
    /// A node with many channel contacts acting as a shared bus.
    Bus,
    /// A gate-only node with no channel contacts (e.g. an input pad net).
    GateOnly,
}

/// Per-device and per-node classification tables.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Role of each device, indexed by device id.
    pub device_roles: Vec<DeviceRole>,
    /// Class of each node, indexed by node id.
    pub node_classes: Vec<NodeClass>,
}

/// Number of channel contacts at or above which a non-restored node is
/// called a bus.
pub const BUS_THRESHOLD: usize = 6;

/// Classifies every device and node in the netlist.
///
/// # Example
///
/// ```
/// use tv_netlist::{NetlistBuilder, Tech};
/// use tv_flow::classify::{classify, DeviceRole};
///
/// # fn main() -> Result<(), tv_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(Tech::nmos4um());
/// let a = b.input("a");
/// let out = b.output("out");
/// let (pu, pd) = b.inverter("i", a, out);
/// let nl = b.finish()?;
/// let c = classify(&nl);
/// assert_eq!(c.device_roles[pu.index()], DeviceRole::PullUp);
/// assert_eq!(c.device_roles[pd.index()], DeviceRole::PullDown);
/// # Ok(())
/// # }
/// ```
pub fn classify(netlist: &Netlist) -> Classification {
    let device_roles = classify_devices(netlist);
    let node_classes = classify_nodes(netlist, &device_roles);
    Classification {
        device_roles,
        node_classes,
    }
}

fn is_clock(netlist: &Netlist, node: NodeId) -> bool {
    matches!(netlist.node(node).role(), NodeRole::Clock(_))
}

/// Assigns a [`DeviceRole`] to every device.
pub fn classify_devices(netlist: &Netlist) -> Vec<DeviceRole> {
    let vdd = netlist.vdd();
    let gnd = netlist.gnd();
    let mut roles: Vec<DeviceRole> = Vec::with_capacity(netlist.device_count());

    for dref in netlist.devices() {
        let d = dref.device;
        let role = match d.kind() {
            DeviceKind::Depletion => {
                if d.is_load_connected() {
                    DeviceRole::PullUp
                } else {
                    DeviceRole::ActivePullUp
                }
            }
            DeviceKind::Enhancement => {
                if d.channel_touches(gnd) {
                    DeviceRole::PullDown
                } else if d.channel_touches(vdd) {
                    if is_clock(netlist, d.gate()) {
                        DeviceRole::Precharge
                    } else {
                        DeviceRole::EnhPullUp
                    }
                } else {
                    // Internal–internal channel: interior pull-down leg or
                    // a pass transistor; refined below.
                    DeviceRole::Pass
                }
            }
        };
        roles.push(role);
    }

    refine_pulldown_interiors(netlist, &mut roles);
    roles
}

/// Walks pull-down networks up from GND, relabeling interior series legs
/// (initially marked `Pass`) as `PullDown`. The walk stops at nodes that
/// carry a pull-up (stage outputs) or storage/bus structure, so genuine
/// pass transistors hanging off a stage output are not swallowed.
fn refine_pulldown_interiors(netlist: &Netlist, roles: &mut [DeviceRole]) {
    let gnd = netlist.gnd();

    // Nodes that terminate a pull-down walk: anything holding a pull-up
    // (of any flavor) or a precharge device is a stage output.
    let mut is_output = vec![false; netlist.node_count()];
    for dref in netlist.devices() {
        let role = roles[dref.id.index()];
        if matches!(
            role,
            DeviceRole::PullUp
                | DeviceRole::ActivePullUp
                | DeviceRole::Precharge
                | DeviceRole::EnhPullUp
        ) {
            let d = dref.device;
            for t in [d.source(), d.drain()] {
                if t != netlist.vdd() {
                    is_output[t.index()] = true;
                }
            }
        }
    }

    // BFS from GND through enhancement channels.
    let mut frontier: Vec<NodeId> = vec![gnd];
    let mut visited = vec![false; netlist.node_count()];
    visited[gnd.index()] = true;
    while let Some(node) = frontier.pop() {
        for &did in netlist.node_devices(node).channel {
            let d = netlist.device(did);
            if d.kind() != DeviceKind::Enhancement {
                continue;
            }
            if roles[did.index()] == DeviceRole::Pass {
                roles[did.index()] = DeviceRole::PullDown;
            }
            let other = d.other_channel_end(node);
            if other == netlist.vdd() || visited[other.index()] {
                continue;
            }
            // Stop at stage outputs: devices beyond them are pass logic.
            if is_output[other.index()] {
                visited[other.index()] = true;
                continue;
            }
            visited[other.index()] = true;
            frontier.push(other);
        }
    }
}

/// Assigns a [`NodeClass`] to every node given the device roles.
pub fn classify_nodes(netlist: &Netlist, device_roles: &[DeviceRole]) -> Vec<NodeClass> {
    let mut classes = Vec::with_capacity(netlist.node_count());
    for id in netlist.node_ids() {
        let node = netlist.node(id);
        let class = match node.role() {
            NodeRole::Vdd | NodeRole::Gnd => NodeClass::Rail,
            NodeRole::Input | NodeRole::Clock(_) => NodeClass::External,
            _ => classify_internal_node(netlist, device_roles, id),
        };
        classes.push(class);
    }
    classes
}

fn classify_internal_node(netlist: &Netlist, device_roles: &[DeviceRole], id: NodeId) -> NodeClass {
    let at = netlist.node_devices(id);
    if at.channel.is_empty() {
        return NodeClass::GateOnly;
    }

    let mut has_static_pullup = false;
    let mut has_precharge = false;
    let mut pass_contacts = 0usize;
    for &did in at.channel {
        match device_roles[did.index()] {
            DeviceRole::PullUp | DeviceRole::ActivePullUp | DeviceRole::EnhPullUp => {
                has_static_pullup = true
            }
            DeviceRole::Precharge => has_precharge = true,
            DeviceRole::Pass => pass_contacts += 1,
            DeviceRole::PullDown => {}
        }
    }

    if !has_static_pullup && has_precharge {
        return NodeClass::Precharged;
    }
    if has_static_pullup {
        return NodeClass::Restored;
    }
    if at.channel.len() >= BUS_THRESHOLD {
        return NodeClass::Bus;
    }
    if pass_contacts == at.channel.len() && !at.gated.is_empty() {
        // Only pass channels touch it and it controls something: storage.
        return NodeClass::Storage;
    }
    NodeClass::PassInterior
}

/// Inventory of a chip by inferred class — the statistics table TV-class
/// tools printed for a newly extracted design.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Census {
    /// Node counts by class: rail, external, restored, precharged,
    /// storage, pass-interior, bus, gate-only.
    pub nodes: [usize; 8],
    /// Device counts by role: pull-up, active pull-up, pull-down,
    /// precharge, enhancement pull-up, pass.
    pub devices: [usize; 6],
}

impl Census {
    /// Counts every node class and device role in a classification.
    pub fn new(c: &Classification) -> Self {
        let mut census = Census::default();
        for class in &c.node_classes {
            let i = match class {
                NodeClass::Rail => 0,
                NodeClass::External => 1,
                NodeClass::Restored => 2,
                NodeClass::Precharged => 3,
                NodeClass::Storage => 4,
                NodeClass::PassInterior => 5,
                NodeClass::Bus => 6,
                NodeClass::GateOnly => 7,
            };
            census.nodes[i] += 1;
        }
        for role in &c.device_roles {
            let i = match role {
                DeviceRole::PullUp => 0,
                DeviceRole::ActivePullUp => 1,
                DeviceRole::PullDown => 2,
                DeviceRole::Precharge => 3,
                DeviceRole::EnhPullUp => 4,
                DeviceRole::Pass => 5,
            };
            census.devices[i] += 1;
        }
        census
    }

    /// Total nodes counted.
    pub fn node_total(&self) -> usize {
        self.nodes.iter().sum()
    }

    /// Total devices counted.
    pub fn device_total(&self) -> usize {
        self.devices.iter().sum()
    }
}

impl std::fmt::Display for Census {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "nodes: rail {}  external {}  restored {}  precharged {}  storage {}  interior {}  bus {}  gate-only {}",
            self.nodes[0], self.nodes[1], self.nodes[2], self.nodes[3],
            self.nodes[4], self.nodes[5], self.nodes[6], self.nodes[7],
        )?;
        write!(
            f,
            "devices: pull-up {}  active-pu {}  pull-down {}  precharge {}  enh-pu {}  pass {}",
            self.devices[0],
            self.devices[1],
            self.devices[2],
            self.devices[3],
            self.devices[4],
            self.devices[5],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_netlist::{NetlistBuilder, Tech};

    fn builder() -> NetlistBuilder {
        NetlistBuilder::new(Tech::nmos4um())
    }

    #[test]
    fn census_totals_match_netlist() {
        let mut b = builder();
        let phi = b.clock("phi1", 0);
        let d = b.input("d");
        let qb = b.node("qb");
        b.dynamic_latch("l", phi, d, qb);
        let nl = b.finish().unwrap();
        let census = Census::new(&classify(&nl));
        assert_eq!(census.node_total(), nl.node_count());
        assert_eq!(census.device_total(), nl.device_count());
        // One storage node, one pass device, rails counted.
        assert_eq!(census.nodes[4], 1);
        assert_eq!(census.devices[5], 1);
        assert_eq!(census.nodes[0], 2);
        let text = census.to_string();
        assert!(text.contains("storage 1"));
        assert!(text.contains("pass 1"));
    }

    #[test]
    fn inverter_roles_and_classes() {
        let mut b = builder();
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let c = classify(&nl);
        assert_eq!(c.node_classes[a.index()], NodeClass::External);
        assert_eq!(c.node_classes[out.index()], NodeClass::Restored);
        assert_eq!(c.node_classes[nl.vdd().index()], NodeClass::Rail);
    }

    #[test]
    fn nand_interior_legs_become_pulldowns() {
        let mut b = builder();
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let out = b.node("out");
        b.nand("g", &[i0, i1, i2], out);
        let nl = b.finish().unwrap();
        let c = classify(&nl);
        let pulldowns = c
            .device_roles
            .iter()
            .filter(|r| **r == DeviceRole::PullDown)
            .count();
        assert_eq!(pulldowns, 3, "all series legs are pull-downs");
        assert!(!c.device_roles.contains(&DeviceRole::Pass));
        // Interior chain nodes are pass-interior (they restore nothing).
        let s0 = nl.node_by_name("g_s0").unwrap();
        assert_eq!(c.node_classes[s0.index()], NodeClass::PassInterior);
    }

    #[test]
    fn latch_storage_node_and_pass_device() {
        let mut b = builder();
        let phi = b.clock("phi", 0);
        let d = b.input("d");
        let qb = b.node("qb");
        let store = b.dynamic_latch("l", phi, d, qb);
        let nl = b.finish().unwrap();
        let c = classify(&nl);
        assert_eq!(c.node_classes[store.index()], NodeClass::Storage);
        let pass = nl
            .devices()
            .find(|dr| dr.device.name() == "l_pass")
            .unwrap();
        assert_eq!(c.device_roles[pass.id.index()], DeviceRole::Pass);
    }

    #[test]
    fn precharged_node_detected() {
        let mut b = builder();
        let phi = b.clock("phi", 0);
        let en = b.input("en");
        let bus = b.node("bus");
        b.precharge("pre", phi, bus);
        // Conditional discharge.
        b.enhancement("dis", en, b.gnd(), bus, 8.0, 4.0);
        let nl = b.finish().unwrap();
        let c = classify(&nl);
        assert_eq!(c.node_classes[bus.index()], NodeClass::Precharged);
        let pre = nl.devices().find(|d| d.device.name() == "pre").unwrap();
        assert_eq!(c.device_roles[pre.id.index()], DeviceRole::Precharge);
    }

    #[test]
    fn super_buffer_pullup_is_active() {
        let mut b = builder();
        let a = b.input("a");
        let out = b.output("out");
        b.super_buffer("sb", a, out, 4.0);
        let nl = b.finish().unwrap();
        let c = classify(&nl);
        let pu = nl.devices().find(|dr| dr.device.name() == "sb_pu").unwrap();
        assert_eq!(c.device_roles[pu.id.index()], DeviceRole::ActivePullUp);
        assert_eq!(c.node_classes[out.index()], NodeClass::Restored);
    }

    #[test]
    fn enh_pullup_vs_precharge_depends_on_gate() {
        let mut b = builder();
        let sig = b.input("sig");
        let x = b.node("x");
        let y = b.node("y");
        let phi = b.clock("phi", 0);
        let (vdd, gnd) = (b.vdd(), b.gnd());
        b.enhancement("follower", sig, vdd, x, 4.0, 4.0);
        b.enhancement("pre", phi, vdd, y, 4.0, 4.0);
        // Keep x and y from being floating stages only.
        b.enhancement("xd", sig, gnd, x, 4.0, 4.0);
        b.enhancement("yd", sig, gnd, y, 4.0, 4.0);
        let nl = b.finish().unwrap();
        let roles = classify_devices(&nl);
        let by_name = |n: &str| {
            nl.devices()
                .find(|d| d.device.name() == n)
                .map(|d| roles[d.id.index()])
                .unwrap()
        };
        assert_eq!(by_name("follower"), DeviceRole::EnhPullUp);
        assert_eq!(by_name("pre"), DeviceRole::Precharge);
    }

    #[test]
    fn bus_detection_by_contact_count() {
        let mut b = builder();
        let bus = b.node("bus");
        // Eight pass transistors onto the bus, nothing else.
        for i in 0..8 {
            let c = b.input(format!("c{i}"));
            let s = b.node(format!("s{i}"));
            let drv = b.input(format!("d{i}"));
            b.inverter(format!("inv{i}"), drv, s);
            b.pass(format!("p{i}"), c, s, bus);
        }
        let nl = b.finish().unwrap();
        let c = classify(&nl);
        assert_eq!(c.node_classes[bus.index()], NodeClass::Bus);
    }

    #[test]
    fn gate_only_node_class() {
        let mut b = builder();
        let a = b.node("a"); // internal, gates something, no channel
        let out = b.node("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let c = classify(&nl);
        assert_eq!(c.node_classes[a.index()], NodeClass::GateOnly);
    }

    #[test]
    fn pass_chain_interior_nodes() {
        let mut b = builder();
        let a = b.input("a");
        let src = b.node("src");
        b.inverter("i", a, src);
        let mut prev = src;
        for i in 0..3 {
            let c = b.clock(format!("phi{i}"), 0);
            let next = b.node(format!("n{i}"));
            b.pass(format!("p{i}"), c, prev, next);
            prev = next;
        }
        let nl = b.finish().unwrap();
        let c = classify(&nl);
        // Interior chain node that gates nothing.
        let n0 = nl.node_by_name("n0").unwrap();
        assert_eq!(c.node_classes[n0.index()], NodeClass::PassInterior);
        // src still restored despite the pass fanout.
        assert_eq!(c.node_classes[src.index()], NodeClass::Restored);
    }
}
