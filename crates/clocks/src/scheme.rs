//! Clock waveform geometry.

/// A two-phase non-overlapping clock scheme.
///
/// One cycle is laid out as
///
/// ```text
/// |<-- w1 -->| gap |<-- w2 -->| gap |   (repeats)
///    φ1 high          φ2 high
/// ```
///
/// All times in ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPhaseClock {
    w1: f64,
    w2: f64,
    gap: f64,
}

impl TwoPhaseClock {
    /// Creates a scheme with the given phase widths and non-overlap gap.
    ///
    /// # Panics
    ///
    /// Panics if any duration is non-positive or non-finite.
    pub fn new(w1: f64, w2: f64, gap: f64) -> Self {
        assert!(
            w1 > 0.0 && w2 > 0.0 && gap > 0.0,
            "phase widths and gap must be positive"
        );
        assert!(
            w1.is_finite() && w2.is_finite() && gap.is_finite(),
            "durations must be finite"
        );
        TwoPhaseClock { w1, w2, gap }
    }

    /// A symmetric scheme dividing `cycle` into two equal phases with the
    /// given gap.
    ///
    /// # Panics
    ///
    /// Panics if `2·gap >= cycle`.
    pub fn symmetric(cycle: f64, gap: f64) -> Self {
        assert!(2.0 * gap < cycle, "gaps leave no room for phases");
        let w = (cycle - 2.0 * gap) / 2.0;
        Self::new(w, w, gap)
    }

    /// Total cycle time, ns.
    #[inline]
    pub fn cycle(&self) -> f64 {
        self.w1 + self.w2 + 2.0 * self.gap
    }

    /// Width of the given phase (0 = φ1, 1 = φ2), ns.
    ///
    /// # Panics
    ///
    /// Panics if `phase > 1`.
    pub fn width(&self, phase: u8) -> f64 {
        match phase {
            0 => self.w1,
            1 => self.w2,
            _ => panic!("two-phase scheme has phases 0 and 1 only"),
        }
    }

    /// The non-overlap gap, ns.
    #[inline]
    pub fn gap(&self) -> f64 {
        self.gap
    }

    /// `[start, end)` window of the given phase within the cycle, with
    /// t = 0 at the rising edge of φ1.
    ///
    /// # Panics
    ///
    /// Panics if `phase > 1`.
    pub fn window(&self, phase: u8) -> (f64, f64) {
        match phase {
            0 => (0.0, self.w1),
            1 => (self.w1 + self.gap, self.w1 + self.gap + self.w2),
            _ => panic!("two-phase scheme has phases 0 and 1 only"),
        }
    }

    /// The phase a latch of phase `p` hands its data to (the other one).
    #[inline]
    pub fn next_phase(&self, phase: u8) -> u8 {
        1 - (phase & 1)
    }

    /// Returns a scheme with the same gap but phase widths scaled so the
    /// cycle becomes `cycle` while keeping the w1:w2 proportion.
    ///
    /// # Panics
    ///
    /// Panics if the new cycle leaves no room for the phases.
    pub fn with_cycle(&self, cycle: f64) -> Self {
        let room = cycle - 2.0 * self.gap;
        assert!(room > 0.0, "cycle too short for the gaps");
        let scale = room / (self.w1 + self.w2);
        Self::new(self.w1 * scale, self.w2 * scale, self.gap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_sum_of_parts() {
        let c = TwoPhaseClock::new(8.0, 6.0, 1.0);
        assert!((c.cycle() - 16.0).abs() < 1e-12);
        assert_eq!(c.width(0), 8.0);
        assert_eq!(c.width(1), 6.0);
        assert_eq!(c.gap(), 1.0);
    }

    #[test]
    fn symmetric_splits_evenly() {
        let c = TwoPhaseClock::symmetric(20.0, 1.0);
        assert_eq!(c.width(0), 9.0);
        assert_eq!(c.width(1), 9.0);
        assert!((c.cycle() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn windows_do_not_overlap() {
        let c = TwoPhaseClock::new(8.0, 6.0, 1.0);
        let (s1, e1) = c.window(0);
        let (s2, e2) = c.window(1);
        assert!(e1 <= s2);
        assert!(e2 <= c.cycle());
        assert_eq!(s1, 0.0);
        assert!((s2 - 9.0).abs() < 1e-12);
    }

    #[test]
    fn next_phase_alternates() {
        let c = TwoPhaseClock::symmetric(10.0, 0.5);
        assert_eq!(c.next_phase(0), 1);
        assert_eq!(c.next_phase(1), 0);
    }

    #[test]
    fn with_cycle_preserves_proportion() {
        let c = TwoPhaseClock::new(8.0, 4.0, 1.0).with_cycle(28.0);
        assert!((c.cycle() - 28.0).abs() < 1e-12);
        assert!((c.width(0) / c.width(1) - 2.0).abs() < 1e-12);
        assert_eq!(c.gap(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = TwoPhaseClock::new(0.0, 5.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "phases 0 and 1")]
    fn third_phase_rejected() {
        let c = TwoPhaseClock::symmetric(10.0, 0.5);
        let _ = c.width(2);
    }
}
