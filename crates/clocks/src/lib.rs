//! Two-phase clocking analysis for nMOS designs.
//!
//! MIPS-generation nMOS chips ran on two non-overlapping clock phases:
//! φ1 latches drink from logic computed during φ2 and vice versa. Before
//! a timing analyzer can bound the cycle time it must reconstruct this
//! discipline from the transistor netlist:
//!
//! * [`scheme`] — the clock waveform geometry (phase widths, non-overlap
//!   gap) and phase arithmetic;
//! * [`qualify`] — propagation of *clock qualification*: control signals
//!   like `write_enable ∧ φ1` behave as clocks and must be recognized as
//!   such (TV called these qualified clocks);
//! * [`latch`] — identification of dynamic latches: storage nodes sampled
//!   through clock-gated pass transistors, the phase boundaries of the
//!   timing graph;
//! * [`constraint`] — setup checks against phase ends and the minimum
//!   cycle computation of experiment T4.
//!
//! # Example
//!
//! ```
//! use tv_netlist::{NetlistBuilder, Tech};
//! use tv_flow::{analyze, RuleSet};
//! use tv_clocks::latch::find_latches;
//!
//! # fn main() -> Result<(), tv_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new(Tech::nmos4um());
//! let phi1 = b.clock("phi1", 0);
//! let d = b.input("d");
//! let qb = b.node("qb");
//! b.dynamic_latch("l", phi1, d, qb);
//! let nl = b.finish()?;
//! let flow = analyze(&nl, &RuleSet::all());
//! let latches = find_latches(&nl, &flow, &tv_clocks::qualify::qualify(&nl));
//! assert_eq!(latches.len(), 1);
//! assert_eq!(latches[0].phase, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraint;
pub mod latch;
pub mod qualify;
pub mod scheme;

pub use constraint::ClockConstraints;
pub use latch::{find_latches, Latch};
pub use qualify::{qualify, Qualification};
pub use scheme::TwoPhaseClock;
