//! Setup constraints and minimum-cycle computation (experiment T4).
//!
//! In a two-phase dynamic discipline, logic launched when a phase opens
//! its source latches must arrive at the next phase's latches before that
//! phase **closes**. With worst-case arrival `a_p` for logic evaluated
//! during phase `p` (measured from the phase's opening edge), the scheme
//! is feasible iff `a_p ≤ width(p)` for both phases, and the minimum cycle
//! keeps both phase widths at their critical arrival:
//! `cycle_min = a_0 + a_1 + 2·gap`.

use crate::scheme::TwoPhaseClock;

/// Checks phase-level setup feasibility and computes minimum cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockConstraints {
    scheme: TwoPhaseClock,
}

impl ClockConstraints {
    /// Wraps a clock scheme for constraint queries.
    pub fn new(scheme: TwoPhaseClock) -> Self {
        ClockConstraints { scheme }
    }

    /// The wrapped scheme.
    pub fn scheme(&self) -> &TwoPhaseClock {
        &self.scheme
    }

    /// Setup slack of logic evaluated during `phase` whose worst-case
    /// arrival (from the phase's opening edge) is `arrival` ns. Negative
    /// means a violation.
    ///
    /// # Panics
    ///
    /// Panics if `phase > 1`.
    pub fn slack(&self, phase: u8, arrival: f64) -> f64 {
        self.scheme.width(phase) - arrival
    }

    /// Whether both phases meet setup given worst-case arrivals.
    pub fn feasible(&self, arrival_phase1: f64, arrival_phase2: f64) -> bool {
        self.slack(0, arrival_phase1) >= 0.0 && self.slack(1, arrival_phase2) >= 0.0
    }

    /// The smallest cycle (keeping this scheme's non-overlap gap) that
    /// accommodates the given worst-case arrivals: each phase shrinks to
    /// exactly its critical arrival.
    ///
    /// # Panics
    ///
    /// Panics if either arrival is negative.
    pub fn min_cycle(&self, arrival_phase1: f64, arrival_phase2: f64) -> f64 {
        assert!(
            arrival_phase1 >= 0.0 && arrival_phase2 >= 0.0,
            "arrivals are non-negative"
        );
        arrival_phase1 + arrival_phase2 + 2.0 * self.scheme.gap()
    }

    /// The scheme with each phase resized to exactly fit the arrivals
    /// (the "critical" clock of the T4 table).
    ///
    /// # Panics
    ///
    /// Panics if either arrival is non-positive.
    pub fn critical_scheme(&self, arrival_phase1: f64, arrival_phase2: f64) -> TwoPhaseClock {
        TwoPhaseClock::new(arrival_phase1, arrival_phase2, self.scheme.gap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constraints() -> ClockConstraints {
        ClockConstraints::new(TwoPhaseClock::new(8.0, 6.0, 1.0))
    }

    #[test]
    fn slack_is_width_minus_arrival() {
        let c = constraints();
        assert!((c.slack(0, 5.0) - 3.0).abs() < 1e-12);
        assert!((c.slack(1, 7.0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn feasibility_needs_both_phases() {
        let c = constraints();
        assert!(c.feasible(8.0, 6.0));
        assert!(!c.feasible(8.1, 6.0));
        assert!(!c.feasible(8.0, 6.1));
    }

    #[test]
    fn min_cycle_adds_gaps() {
        let c = constraints();
        assert!((c.min_cycle(5.0, 3.0) - 10.0).abs() < 1e-12);
        assert_eq!(c.min_cycle(0.0, 0.0), 2.0);
    }

    #[test]
    fn critical_scheme_fits_exactly() {
        let c = constraints();
        let crit = c.critical_scheme(5.0, 3.0);
        assert!((crit.cycle() - c.min_cycle(5.0, 3.0)).abs() < 1e-12);
        assert_eq!(crit.width(0), 5.0);
        assert_eq!(crit.width(1), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_arrival_rejected() {
        let _ = constraints().min_cycle(-1.0, 0.0);
    }
}
