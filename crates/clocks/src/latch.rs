//! Latch identification: the phase boundaries of the timing graph.

use tv_flow::{DeviceRole, Direction, FlowAnalysis, NodeClass};
use tv_netlist::{DeviceId, Netlist, NodeId};

use crate::qualify::Qualification;

/// A dynamic latch found in the netlist: a storage node written through a
/// clock-qualified pass transistor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Latch {
    /// The dynamic storage node.
    pub storage: NodeId,
    /// The pass transistor that samples it.
    pub pass: DeviceId,
    /// The clock phase that opens the pass transistor (0 = φ1, 1 = φ2).
    pub phase: u8,
    /// The node the data comes from (the pass device's upstream end).
    pub data_from: NodeId,
}

/// Finds every dynamic latch: pass devices whose control is qualified to a
/// single phase and whose downstream end is a storage (or bus/pass-fed)
/// node. The resulting list is sorted by storage node id.
///
/// Nodes written by pass devices of *conflicting* phases are skipped (they
/// surface through [`crate::qualify::conflicts`] instead).
pub fn find_latches(
    netlist: &Netlist,
    flow: &FlowAnalysis,
    qualification: &[Qualification],
) -> Vec<Latch> {
    let mut latches = Vec::new();
    for dref in netlist.devices() {
        if flow.device_role(dref.id) != DeviceRole::Pass {
            continue;
        }
        let Direction::Toward(storage) = flow.direction(dref.id) else {
            continue;
        };
        let gate = dref.device.gate();
        let Qualification::Phase(phase) = qualification[gate.index()] else {
            continue;
        };
        // The destination must hold state dynamically: storage proper, an
        // interior pass node that gates logic, or a (precharged) bus.
        let class = flow.node_class(storage);
        let is_state = matches!(
            class,
            NodeClass::Storage | NodeClass::Bus | NodeClass::Precharged
        );
        if !is_state {
            continue;
        }
        let data_from = dref.device.other_channel_end(storage);
        latches.push(Latch {
            storage,
            pass: dref.id,
            phase,
            data_from,
        });
    }
    latches.sort_by_key(|l| (l.storage, l.pass));
    latches
}

/// Count of latches per phase `(φ1, φ2)`, for reports.
pub fn latch_counts(latches: &[Latch]) -> (usize, usize) {
    let p1 = latches.iter().filter(|l| l.phase == 0).count();
    (p1, latches.len() - p1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qualify::qualify;
    use tv_flow::{analyze, RuleSet};
    use tv_netlist::{NetlistBuilder, Tech};

    fn find(nl: &Netlist) -> Vec<Latch> {
        let flow = analyze(nl, &RuleSet::all());
        let q = qualify(nl);
        find_latches(nl, &flow, &q)
    }

    #[test]
    fn simple_latch_found_with_phase() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi2 = b.clock("phi2", 1);
        let d = b.input("d");
        let qb = b.node("qb");
        let store = b.dynamic_latch("l", phi2, d, qb);
        let nl = b.finish().unwrap();
        let latches = find(&nl);
        assert_eq!(latches.len(), 1);
        assert_eq!(latches[0].storage, store);
        assert_eq!(latches[0].phase, 1);
        assert_eq!(latches[0].data_from, d);
    }

    #[test]
    fn qualified_clock_latch_found() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi1 = b.clock("phi1", 0);
        let we = b.input("we");
        let nq = b.node("nq");
        b.nand("g", &[we, phi1], nq);
        let wq = b.node("wq");
        b.inverter("i", nq, wq);
        let d = b.input("d");
        let qb = b.node("qb");
        b.dynamic_latch("l", wq, d, qb);
        let nl = b.finish().unwrap();
        let latches = find(&nl);
        assert_eq!(latches.len(), 1);
        assert_eq!(latches[0].phase, 0);
    }

    #[test]
    fn unclocked_mux_is_not_a_latch() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let sel = b.input("sel"); // plain data select, not a clock
        let src = b.node("src");
        b.inverter("i", a, src);
        let m = b.node("m");
        b.pass("p", sel, src, m);
        let mb = b.node("mb");
        b.inverter("im", m, mb);
        let nl = b.finish().unwrap();
        assert!(find(&nl).is_empty());
    }

    #[test]
    fn master_slave_register_yields_two_latches() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi1 = b.clock("phi1", 0);
        let phi2 = b.clock("phi2", 1);
        let d = b.input("d");
        let m = b.node("m");
        b.dynamic_latch("master", phi1, d, m);
        let q = b.node("q");
        b.dynamic_latch("slave", phi2, m, q);
        let nl = b.finish().unwrap();
        let latches = find(&nl);
        assert_eq!(latches.len(), 2);
        assert_eq!(latch_counts(&latches), (1, 1));
        // The slave's data comes from the master's restored output.
        let slave = latches.iter().find(|l| l.phase == 1).unwrap();
        assert_eq!(nl.node_name(slave.data_from), "m");
    }
}
