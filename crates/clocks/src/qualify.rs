//! Clock-qualification propagation.
//!
//! Real control logic rarely gates latches with a raw clock: it gates them
//! with `enable ∧ φ1`, produced by a NAND/inverter pair or named directly
//! as a "qualified clock" input. For case analysis the analyzer must know
//! which internal nodes carry phase-1 timing, which carry phase-2, and
//! which are unclocked. Qualification propagates through restoring gates —
//! including *series pull-down interiors*, so a clock on the bottom leg of
//! a NAND qualifies the gate's output — but **not** through pass
//! transistors, whose downstream timing is set by their control, not their
//! data.

use tv_flow::{DeviceRole, FlowAnalysis};
use tv_netlist::NodeRole;
use tv_netlist::{Netlist, NodeId};

/// The qualification state of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Qualification {
    /// Not derived from any clock.
    #[default]
    Unclocked,
    /// Carries the timing of the given phase (0 = φ1, 1 = φ2).
    Phase(u8),
    /// Derived from both phases — almost always a design error.
    Conflict,
}

impl Qualification {
    fn merge(self, other: Qualification) -> Qualification {
        use Qualification::*;
        match (self, other) {
            (Unclocked, x) | (x, Unclocked) => x,
            (Phase(a), Phase(b)) if a == b => Phase(a),
            _ => Conflict,
        }
    }
}

/// Per-node qualification, computed by forward propagation from the clock
/// nodes until fixpoint.
///
/// A node merges (a) the qualification of every node gating a device on
/// its channel, and (b) — through pull-down devices only — the
/// qualification of the channel's other end, which carries clocks on
/// interior NAND legs up to the stage output. Externally driven inputs
/// stay unclocked; clocks are their own phase.
///
/// # Example
///
/// ```
/// use tv_netlist::{NetlistBuilder, Tech};
/// use tv_flow::{analyze, RuleSet};
/// use tv_clocks::qualify::{qualify_with_flow, Qualification};
///
/// # fn main() -> Result<(), tv_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(Tech::nmos4um());
/// let phi1 = b.clock("phi1", 0);
/// let en = b.input("en");
/// let nand_out = b.node("wq_bar");
/// b.nand("g", &[phi1, en], nand_out);   // enable ∧ φ1 (inverted)
/// let wq = b.node("wq");
/// b.inverter("i", nand_out, wq);
/// let nl = b.finish()?;
/// let flow = analyze(&nl, &RuleSet::all());
/// let q = qualify_with_flow(&nl, &flow);
/// assert_eq!(q[wq.index()], Qualification::Phase(0));
/// # Ok(())
/// # }
/// ```
pub fn qualify_with_flow(netlist: &Netlist, flow: &FlowAnalysis) -> Vec<Qualification> {
    let n = netlist.node_count();
    let mut q = vec![Qualification::Unclocked; n];
    for id in netlist.node_ids() {
        if let NodeRole::Clock(p) = netlist.node(id).role() {
            q[id.index()] = Qualification::Phase(p);
        }
    }

    loop {
        let mut changed = false;
        for id in netlist.node_ids() {
            let role = netlist.node(id).role();
            if role.is_external_source() {
                continue;
            }
            let mut acc = Qualification::Unclocked;
            for &did in netlist.node_devices(id).channel {
                let dev = netlist.device(did);
                // Only devices that *drive* this node qualify it: a pass
                // transistor hanging off a stage output must not leak its
                // clock back into the driver.
                let drives_here = match flow.direction(did) {
                    tv_flow::Direction::Toward(dst) => dst == id,
                    _ => true, // unresolved/bidirectional: conservative
                };
                if !drives_here {
                    continue;
                }
                acc = acc.merge(q[dev.gate().index()]);
                // Walk series pull-down interiors: a clock gating the leg
                // below carries its phase to the output above.
                if flow.device_role(did) == DeviceRole::PullDown {
                    let other = dev.other_channel_end(id);
                    if other != netlist.gnd() && other != netlist.vdd() {
                        acc = acc.merge(q[other.index()]);
                    }
                }
            }
            let merged = q[id.index()].merge(acc);
            if merged != q[id.index()] {
                q[id.index()] = merged;
                changed = true;
            }
        }
        if !changed {
            return q;
        }
    }
}

/// Convenience wrapper that runs the flow analysis internally with the
/// full rule set. Prefer [`qualify_with_flow`] when a [`FlowAnalysis`] is
/// already in hand.
pub fn qualify(netlist: &Netlist) -> Vec<Qualification> {
    let flow = tv_flow::analyze(netlist, &tv_flow::RuleSet::all());
    qualify_with_flow(netlist, &flow)
}

/// Nodes whose qualification is [`Qualification::Conflict`], for reports.
pub fn conflicts(netlist: &Netlist, q: &[Qualification]) -> Vec<NodeId> {
    netlist
        .node_ids()
        .filter(|id| q[id.index()] == Qualification::Conflict)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_netlist::{NetlistBuilder, Tech};

    fn builder() -> NetlistBuilder {
        NetlistBuilder::new(Tech::nmos4um())
    }

    #[test]
    fn unclocked_logic_stays_unclocked() {
        let mut b = builder();
        let a = b.input("a");
        let out = b.node("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let q = qualify(&nl);
        assert_eq!(q[out.index()], Qualification::Unclocked);
    }

    #[test]
    fn clock_node_is_its_phase() {
        let mut b = builder();
        let phi2 = b.clock("phi2", 1);
        let x = b.node("x");
        b.inverter("i", phi2, x);
        let nl = b.finish().unwrap();
        let q = qualify(&nl);
        assert_eq!(q[phi2.index()], Qualification::Phase(1));
        assert_eq!(q[x.index()], Qualification::Phase(1));
    }

    #[test]
    fn qualification_propagates_through_gate_chain() {
        let mut b = builder();
        let phi1 = b.clock("phi1", 0);
        let en = b.input("en");
        let x = b.node("x");
        b.nand("g", &[en, phi1], x); // clock on the interior leg
        let y = b.node("y");
        b.inverter("i", x, y);
        let z = b.node("z");
        b.inverter("i2", y, z);
        let nl = b.finish().unwrap();
        let q = qualify(&nl);
        for node in [x, y, z] {
            assert_eq!(q[node.index()], Qualification::Phase(0));
        }
    }

    #[test]
    fn mixing_phases_conflicts() {
        let mut b = builder();
        let phi1 = b.clock("phi1", 0);
        let phi2 = b.clock("phi2", 1);
        let bad = b.node("bad");
        b.nand("g", &[phi1, phi2], bad);
        let nl = b.finish().unwrap();
        let q = qualify(&nl);
        assert_eq!(q[bad.index()], Qualification::Conflict);
        assert!(conflicts(&nl, &q).contains(&bad));
    }

    #[test]
    fn storage_node_inherits_phase_from_pass_gate() {
        let mut b = builder();
        let phi1 = b.clock("phi1", 0);
        let d = b.input("d");
        let qb = b.node("qb");
        let store = b.dynamic_latch("l", phi1, d, qb);
        let nl = b.finish().unwrap();
        let q = qualify(&nl);
        assert_eq!(q[store.index()], Qualification::Phase(0));
    }

    #[test]
    fn master_slave_phases_do_not_conflict_across_pass() {
        let mut b = builder();
        let phi1 = b.clock("phi1", 0);
        let phi2 = b.clock("phi2", 1);
        let d = b.input("d");
        let m = b.node("m");
        b.dynamic_latch("master", phi1, d, m);
        let q_out = b.node("q");
        let slave_store = b.dynamic_latch("slave", phi2, m, q_out);
        let nl = b.finish().unwrap();
        let q = qualify(&nl);
        // The slave storage is φ2 even though its data is φ1-timed: pass
        // devices must not leak their data side's qualification.
        assert_eq!(q[slave_store.index()], Qualification::Phase(1));
        assert!(conflicts(&nl, &q).is_empty());
    }

    #[test]
    fn external_input_never_gains_phase() {
        let mut b = builder();
        let phi1 = b.clock("phi1", 0);
        let d = b.input("d");
        let qb = b.node("qb");
        b.dynamic_latch("l", phi1, d, qb);
        let nl = b.finish().unwrap();
        let q = qualify(&nl);
        assert_eq!(q[d.index()], Qualification::Unclocked);
    }
}
