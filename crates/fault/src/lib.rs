//! The deterministic fault-injection plane.
//!
//! Production recovery code is only trustworthy if its failure paths run
//! on every commit, not just when the data center misbehaves. This crate
//! provides the machinery: a seeded [`FaultPlan`] names one trust
//! boundary ([`Site`]) and a trigger count, and [`fault_point!`] hooks
//! compiled into those boundaries fire the plan's fault exactly once —
//! a forced worker panic, a forced `io::Error`, a corrupted incremental
//! certificate, an exhausted deadline clock — after which the hosting
//! subsystem's recovery path (serial degradation, bounded retry, cold
//! recompute) must restore the documented contract. `tv chaos` sweeps
//! seeds over golden workloads and asserts exactly that.
//!
//! Design constraints, in order:
//!
//! * **Zero-cost disarmed.** Every hook is one relaxed atomic load and
//!   an untaken branch, the same budget as the `tv_obs` counter plane;
//!   the bench-smoke 2× gate holds it there. No allocation, no TLS.
//! * **Deterministic.** A plan is a pure function of its seed
//!   (SplitMix64, the same generator as `tv_gen::rng`). Firing is
//!   one-shot and atomic, so even when worker threads race to a site
//!   the fault fires exactly once, and every forced failure is
//!   expressed in deterministic terms (a poisoned deadline flag, never
//!   a wall-clock read) so recovery transcripts are golden-able.
//! * **Dependency-free.** Nothing below `std`; every crate in the
//!   workspace can host a hook without a cycle.
//!
//! The plane is process-global, like the counter plane: tests that arm
//! plans serialize on their own mutex (see `tv chaos` and the fuzzer's
//! `--faults` mode, which run workloads back to back, never in
//! parallel).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Every trust boundary carrying a [`fault_point!`] hook. The variants
/// are the registry: `tv chaos` sweeps plans over all of them and its
/// summary reports per-site injection counts under [`Site::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Site {
    /// Reading a `.sim` file from disk (session `load`, CLI load).
    SimRead,
    /// A 64-line chunk boundary inside the recovering `.sim` parser.
    ParseChunk,
    /// A graph-build worker, per stage root (forced panic).
    GraphBuild,
    /// A levelized-propagation worker, per node evaluation (forced
    /// panic).
    PropagateWorker,
    /// Entry into the pass pipeline (forced `TvError::Internal`).
    PassEntry,
    /// The incremental cache's certificate lookup (forced corruption:
    /// the cached case entry must be dropped and recomputed cold).
    CertLookup,
    /// The propagation deadline/budget clock (forced early exhaustion,
    /// expressed deterministically — never a wall-clock read).
    ExhaustClock,
    /// Writing a `--trace` Chrome trace file.
    TraceWrite,
    /// Writing a `--metrics` counter dump.
    MetricsWrite,
    /// Appending to a `--journal` session journal.
    JournalWrite,
    /// The serving plane's listener accepting a connection.
    Accept,
    /// Reading a protocol frame off a served connection.
    FrameRead,
    /// Writing a protocol frame to a served connection.
    FrameWrite,
}

/// All sites, in registry order.
pub const SITES: [Site; 13] = [
    Site::SimRead,
    Site::ParseChunk,
    Site::GraphBuild,
    Site::PropagateWorker,
    Site::PassEntry,
    Site::CertLookup,
    Site::ExhaustClock,
    Site::TraceWrite,
    Site::MetricsWrite,
    Site::JournalWrite,
    Site::Accept,
    Site::FrameRead,
    Site::FrameWrite,
];

/// What failure a site expresses when its hook fires. Each site has
/// exactly one kind — the fault model is "this boundary breaks the way
/// that boundary breaks", not an arbitrary cross product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A forced `std::io::Error` from a read or write.
    Io,
    /// A forced panic inside an isolated worker.
    Panic,
    /// A forced internal-invariant error (`TvError::Internal`).
    Internal,
    /// A forced certificate corruption (cache must recompute cold).
    Corrupt,
    /// A forced early exhaustion of a resource guard.
    Exhaust,
}

impl Site {
    /// Stable snake_case name used in chaos summaries and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Site::SimRead => "sim_read",
            Site::ParseChunk => "parse_chunk",
            Site::GraphBuild => "graph_build",
            Site::PropagateWorker => "propagate_worker",
            Site::PassEntry => "pass_entry",
            Site::CertLookup => "cert_lookup",
            Site::ExhaustClock => "exhaust_clock",
            Site::TraceWrite => "trace_write",
            Site::MetricsWrite => "metrics_write",
            Site::JournalWrite => "journal_write",
            Site::Accept => "accept",
            Site::FrameRead => "frame_read",
            Site::FrameWrite => "frame_write",
        }
    }

    /// The failure kind this site expresses.
    pub fn kind(self) -> Kind {
        match self {
            Site::SimRead | Site::TraceWrite | Site::MetricsWrite | Site::JournalWrite => Kind::Io,
            Site::ParseChunk => Kind::Io,
            Site::Accept | Site::FrameRead | Site::FrameWrite => Kind::Io,
            Site::GraphBuild | Site::PropagateWorker => Kind::Panic,
            Site::PassEntry => Kind::Internal,
            Site::CertLookup => Kind::Corrupt,
            Site::ExhaustClock => Kind::Exhaust,
        }
    }
}

/// One seeded fault: fire `site`'s failure on its `after`-th hit
/// (0 = the first time the boundary is crossed). One-shot: once fired,
/// the plan stays spent until the next [`arm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The trust boundary to break.
    pub site: Site,
    /// How many hits of the site to let pass before firing.
    pub after: u64,
}

/// One SplitMix64 step (the same finalizer as `tv_gen::rng::Rng64`,
/// vendored so this crate stays dependency-free).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The plan a seed deterministically names: a uniformly chosen site
    /// and a small trigger count (0–2, so plans fire early enough for
    /// short workloads to reach them).
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed;
        let site = SITES[(splitmix(&mut s) % SITES.len() as u64) as usize];
        let after = splitmix(&mut s) % 3;
        FaultPlan { site, after }
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static SITE: AtomicUsize = AtomicUsize::new(0);
static AFTER: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);
static FIRED: AtomicBool = AtomicBool::new(false);

/// Arms `plan` for the whole process, resetting hit and fired state.
pub fn arm(plan: FaultPlan) {
    // Order matters: publish the plan before raising the armed flag so
    // a hook that observes `ARMED` sees a consistent plan.
    ARMED.store(false, Ordering::SeqCst);
    SITE.store(plan.site as usize, Ordering::SeqCst);
    AFTER.store(plan.after, Ordering::SeqCst);
    HITS.store(0, Ordering::SeqCst);
    FIRED.store(false, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms the plane; hooks return to their one-relaxed-load fast path.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}

/// Whether the currently armed plan has fired.
pub fn fired() -> bool {
    FIRED.load(Ordering::SeqCst)
}

/// The armed plan, if any (chaos reads this back for its summary).
pub fn armed() -> Option<FaultPlan> {
    if !ARMED.load(Ordering::SeqCst) {
        return None;
    }
    Some(FaultPlan {
        site: SITES[SITE.load(Ordering::SeqCst)],
        after: AFTER.load(Ordering::SeqCst),
    })
}

/// The hook primitive: reports whether `site`'s fault fires at this
/// crossing. Disarmed, this is one relaxed load and an untaken branch.
/// Armed, each crossing of the plan's site counts one hit, and the
/// `after`-th hit fires — exactly once, even under worker races.
#[inline]
pub fn fire(site: Site) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    fire_slow(site)
}

#[cold]
fn fire_slow(site: Site) -> bool {
    if SITE.load(Ordering::SeqCst) != site as usize || FIRED.load(Ordering::SeqCst) {
        return false;
    }
    let hit = HITS.fetch_add(1, Ordering::SeqCst);
    if hit == AFTER.load(Ordering::SeqCst) {
        // `swap` keeps the one-shot guarantee when two workers reach
        // the trigger hit concurrently.
        !FIRED.swap(true, Ordering::SeqCst)
    } else {
        false
    }
}

/// A forced `io::Error` for an I/O site, if the plan fires here.
pub fn io_error(site: Site) -> Option<std::io::Error> {
    fire(site)
        .then(|| std::io::Error::other(format!("injected fault at {} (tv_fault)", site.name())))
}

/// The panic message an injected worker panic carries (asserted on by
/// isolation tests).
pub fn panic_message(site: Site) -> String {
    format!("injected fault at {} (tv_fault)", site.name())
}

/// The hook as an expression: `fault_point!(Site::GraphBuild)` is
/// `true` exactly when the armed plan fires at this crossing.
#[macro_export]
macro_rules! fault_point {
    ($site:expr) => {
        $crate::fire($site)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The plane is process-global; serialize tests touching it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_hooks_never_fire() {
        let _g = lock();
        disarm();
        for s in SITES {
            assert!(!fire(s));
        }
        assert!(armed().is_none());
    }

    #[test]
    fn fires_once_on_the_nth_hit_of_the_right_site() {
        let _g = lock();
        arm(FaultPlan {
            site: Site::GraphBuild,
            after: 2,
        });
        assert!(!fire(Site::PropagateWorker), "wrong site must not fire");
        assert!(!fire(Site::GraphBuild)); // hit 0
        assert!(!fire(Site::GraphBuild)); // hit 1
        assert!(fire(Site::GraphBuild)); // hit 2 — fires
        assert!(fired());
        assert!(!fire(Site::GraphBuild), "one-shot: spent after firing");
        disarm();
    }

    #[test]
    fn rearming_resets_hits_and_fired() {
        let _g = lock();
        arm(FaultPlan {
            site: Site::SimRead,
            after: 0,
        });
        assert!(fire(Site::SimRead));
        arm(FaultPlan {
            site: Site::SimRead,
            after: 0,
        });
        assert!(!fired());
        assert!(fire(Site::SimRead));
        disarm();
    }

    #[test]
    fn concurrent_racers_fire_exactly_once() {
        let _g = lock();
        arm(FaultPlan {
            site: Site::PropagateWorker,
            after: 4,
        });
        let fired_count = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        if fire(Site::PropagateWorker) {
                            fired_count.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(fired_count.load(Ordering::SeqCst), 1);
        disarm();
    }

    #[test]
    fn plans_are_deterministic_in_the_seed_and_cover_sites() {
        let _g = lock();
        let mut seen = [false; SITES.len()];
        for seed in 0..256u64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            assert!(a.after < 3);
            seen[a.site as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "256 seeds must cover every site");
    }

    #[test]
    fn io_error_only_materializes_on_fire() {
        let _g = lock();
        disarm();
        assert!(io_error(Site::JournalWrite).is_none());
        arm(FaultPlan {
            site: Site::JournalWrite,
            after: 0,
        });
        let e = io_error(Site::JournalWrite).expect("fires on hit 0");
        assert!(e.to_string().contains("journal_write"));
        assert!(io_error(Site::JournalWrite).is_none(), "one-shot");
        disarm();
    }

    #[test]
    fn site_names_are_stable_and_kinds_partition() {
        for s in SITES {
            assert!(!s.name().is_empty());
        }
        assert_eq!(Site::GraphBuild.kind(), Kind::Panic);
        assert_eq!(Site::CertLookup.kind(), Kind::Corrupt);
        assert_eq!(Site::ExhaustClock.kind(), Kind::Exhaust);
        assert_eq!(Site::PassEntry.kind(), Kind::Internal);
        assert_eq!(Site::SimRead.kind(), Kind::Io);
        assert_eq!(Site::Accept.kind(), Kind::Io);
        assert_eq!(Site::FrameRead.kind(), Kind::Io);
        assert_eq!(Site::FrameWrite.kind(), Kind::Io);
    }
}
