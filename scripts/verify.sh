#!/usr/bin/env bash
# The repo's verification gate, runnable with no network access:
# tier-1 (ROADMAP.md) plus formatting and lints. CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

# The workspace has no external dependencies and commits its Cargo.lock,
# so --offline must always work; using it here keeps the gate honest.
export CARGO_NET_OFFLINE=true

echo "== tier-1: cargo build --release =="
cargo build --release --offline --workspace

echo "== tier-1: cargo test -q =="
cargo test -q --offline --workspace

echo "== examples build =="
# The examples are documentation that compiles; tier-1 alone never
# builds them, so an API drift can silently rot them without this.
cargo build --offline --examples

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== bench smoke: perf trajectory vs BENCH_TRAJECTORY.json =="
# Fixed smoke suite over the acceptance benchmarks, gated at 2x against
# the latest run appended to the committed trajectory (current-run min
# vs baseline median, so noisy hosts can only produce false passes).
# The suite runs with instrumentation disabled, so this gate is also
# the proof that the tv_obs hot-path checks cost nothing measurable.
# It additionally gates the noise-free counter plane: the warm mips32
# resize's propagate.relaxations must stay under half the cold analyze
# count, or the demand-driven cone engine has stopped engaging.
# Append a new labeled run after an intentional perf change with:
#   cargo run --release --offline -p tv-bench --bin perf_trajectory -- \
#     --out BENCH_TRAJECTORY.json --label prN-short-description
cargo run --release --offline -p tv-bench --bin perf_trajectory -- --check BENCH_TRAJECTORY.json --threshold 2.0

echo "== batch smoke: tv batch vs golden transcript =="
# The committed session script must replay to its committed transcript
# byte for byte: pins the session protocol, the report fingerprints, and
# the pass-pipeline invalidation trace in one diff.
cargo run --release --offline --bin tv -- batch tests/data/session_smoke.txt \
  | diff -u tests/data/session_smoke.golden -

echo "== metrics smoke: deterministic counter golden =="
# The committed metrics script replays to its committed transcript byte
# for byte: pins the `metrics` reply shape and the counter values for a
# fixed edit sequence — including that the warm marks' work plane
# shrinks against the cold one once the demand-driven cone engine
# engages (the cone.* counters in the golden record by how much).
cargo run --release --offline --bin tv -- batch tests/data/metrics_smoke.txt \
  | diff -u tests/data/metrics_smoke.golden -

echo "== cone smoke: warm edits are O(affected cone) =="
# The committed MIPS-class transcript is the acceptance evidence for
# demand-driven cone propagation: the warm single-resize re-analysis
# records under 10% of the cold run's propagate.relaxations, with every
# report fingerprint bit-identical to the full walk's.
cargo run --release --offline --bin tv -- batch tests/data/cone_smoke.txt \
  | diff -u tests/data/cone_smoke.golden -

echo "== extract smoke: hierarchical macromodels share and de-share =="
# The committed transcript pins hierarchical extraction (DESIGN.md §16):
# the cold mips32 analyze groups stages into equivalence classes and
# analyzes one master per class (macro.analyzed well under the stage
# count), a parametric resize de-shares exactly one instance per phase
# graph, and the report fingerprints stay bit-identical to the flat
# path throughout.
cargo run --release --offline --bin tv -- batch tests/data/extract_smoke.txt \
  | diff -u tests/data/extract_smoke.golden -

echo "== ingest smoke: chunked parse identity + zero reallocs =="
# Generate a ~100k-device multi-core design with `tv gen`, parse it at
# --jobs 1/2/8, and require byte-identical reports, diagnostics, and
# metrics dumps (DESIGN.md §15). The jobs-1 dump must also show
# ingest.reallocs == 0: the pre-scan sized every arena exactly, so the
# hot parse loop performed no growth reallocation.
ingest_sim="$(mktemp /tmp/tv-ingest.XXXXXX.sim)"
ingest_dir="$(mktemp -d /tmp/tv-ingest.XXXXXX)"
trap 'rm -f "$ingest_sim"; rm -rf "$ingest_dir"' EXIT
cargo run --release --offline --bin tv -- gen --cores 7 --out "$ingest_sim"
# -q: the captured stderr must hold only tv's diagnostics, not cargo's
# own "Running ..." lines (which embed the per-jobs command line).
for j in 1 2 8; do
  cargo run -q --release --offline --bin tv -- flow "$ingest_sim" --jobs "$j" \
    --metrics "$ingest_dir/m$j.json" > "$ingest_dir/out$j.txt" 2> "$ingest_dir/err$j.txt"
done
for j in 2 8; do
  diff -u "$ingest_dir/out1.txt" "$ingest_dir/out$j.txt"
  diff -u "$ingest_dir/err1.txt" "$ingest_dir/err$j.txt"
  diff -u "$ingest_dir/m1.json" "$ingest_dir/m$j.json"
done
grep -q '"ingest.reallocs":0' "$ingest_dir/m1.json" \
  || { echo "ingest smoke: ingest.reallocs != 0"; exit 1; }

echo "== profile smoke: mips32 --trace round trip =="
# A full mips32 analyze must emit a Chrome trace that parses and whose
# spans nest; `tv trace-check` is the same validator the tests use.
trace_file="$(mktemp /tmp/tv-trace.XXXXXX.json)"
trap 'rm -f "$trace_file" "$ingest_sim"; rm -rf "$ingest_dir"' EXIT
cargo run --release --offline --bin tv -- demo --trace "$trace_file" > /dev/null
cargo run --release --offline --bin tv -- trace-check "$trace_file"

echo "== fuzz smoke: tv fuzz --iters 500 =="
# Deterministic mutation fuzzing of the ingest pipeline: zero panics,
# a diagnostic on every rejection. Offline, seeded, finishes in seconds.
cargo run --release --offline --bin tv -- fuzz --iters 500

echo "== chaos smoke: tv chaos --seeds 64 vs golden =="
# The fault-injection sweep: one seeded fault plan per seed against the
# fixed session workload, plus a journal cut-and-resume per seed. The
# committed golden pins the per-site outcome tally — any escaped panic,
# silent result divergence, or phantom recovery fails the diff and the
# sweep's own exit code.
cargo run --release --offline --bin tv -- chaos --seeds 64 \
  | diff -u tests/data/chaos_smoke.golden -

echo "== fault fuzz smoke: tv fuzz --faults =="
# Randomized session scripts under seeded fault plans: every triggered
# fault must be absorbed, recovered, or loud — never a quiet corruption.
cargo run --release --offline --bin tv -- fuzz --faults

echo "== serve smoke: tv client vs golden over a live server =="
# Start a real `tv serve` on a unix socket, replay the committed client
# script against it, and diff the transcript against the golden — the
# serving plane's bit-identity promise (client transcript == `tv batch`
# transcript) checked end to end over an actual socket.
serve_sock="$(mktemp -u /tmp/tv-serve.XXXXXX.sock)"
./target/release/tv serve --unix "$serve_sock" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_sock" "$trace_file" "$ingest_sim"; rm -rf "$ingest_dir"' EXIT
for _ in $(seq 1 100); do [ -S "$serve_sock" ] && break; sleep 0.1; done
[ -S "$serve_sock" ] || { echo "serve smoke: server socket never appeared"; exit 1; }
./target/release/tv client --unix "$serve_sock" tests/data/serve_smoke.txt \
  | diff -u tests/data/serve_smoke.golden -
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true

echo "verify: OK"
