#!/usr/bin/env bash
# The repo's verification gate, runnable with no network access:
# tier-1 (ROADMAP.md) plus formatting and lints. CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

# The workspace has no external dependencies and commits its Cargo.lock,
# so --offline must always work; using it here keeps the gate honest.
export CARGO_NET_OFFLINE=true

echo "== tier-1: cargo build --release =="
cargo build --release --offline --workspace

echo "== tier-1: cargo test -q =="
cargo test -q --offline --workspace

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== bench smoke: perf trajectory vs BENCH_4.json =="
# Fixed smoke suite over the acceptance benchmarks, gated at 2x against
# the committed baseline (current-run min vs baseline median, so noisy
# hosts can only produce false passes). Regenerate the baseline after an
# intentional perf change with:
#   cargo run --release --offline -p tv-bench --bin perf_trajectory -- --out BENCH_4.json
cargo run --release --offline -p tv-bench --bin perf_trajectory -- --check BENCH_4.json --threshold 2.0

echo "== batch smoke: tv batch vs golden transcript =="
# The committed session script must replay to its committed transcript
# byte for byte: pins the session protocol, the report fingerprints, and
# the pass-pipeline invalidation trace in one diff.
cargo run --release --offline --bin tv -- batch tests/data/session_smoke.txt \
  | diff -u tests/data/session_smoke.golden -

echo "== fuzz smoke: tv fuzz --iters 500 =="
# Deterministic mutation fuzzing of the ingest pipeline: zero panics,
# a diagnostic on every rejection. Offline, seeded, finishes in seconds.
cargo run --release --offline --bin tv -- fuzz --iters 500

echo "verify: OK"
