//! Quickstart: build a small nMOS circuit by hand, analyze it, and print
//! the full TV report.
//!
//! Run with: `cargo run --example quickstart`

use nmos_tv::core::{AnalysisOptions, Analyzer};
use nmos_tv::netlist::{sim_format, NetlistBuilder, NetlistError, Tech};

fn main() -> Result<(), NetlistError> {
    // A 1983-flavor circuit: an input buffered through two inverters,
    // sampled into a φ1 dynamic latch, with the latch output driving a
    // 3-input NAND qualified by φ1.
    let tech = Tech::nmos4um();
    let mut b = NetlistBuilder::new(tech);

    let a = b.input("a");
    let en = b.input("en");
    let phi1 = b.clock("phi1", 0);

    let x = b.node("x");
    b.inverter("i1", a, x);
    let y = b.node("y");
    b.inverter("i2", x, y);

    let qb = b.node("qb");
    b.dynamic_latch("lat", phi1, y, qb);

    let out = b.output("out");
    b.nand("g", &[qb, en, phi1], out);

    let netlist = b.finish()?;

    // The netlist round-trips through the .sim interchange format, the
    // way an extractor would hand it to TV.
    let sim_text = sim_format::write(&netlist);
    println!("--- .sim netlist ({} lines) ---", sim_text.lines().count());
    print!("{sim_text}");

    // Analyze: signal flow, clock recovery, per-phase timing, checks.
    let report = Analyzer::new(&netlist).run(&AnalysisOptions::default());
    println!("--- TV report ---");
    print!("{}", report.render(&netlist));

    // Individual results are programmatically accessible too.
    let arrival = report
        .arrival(netlist.node_by_name("out").expect("out exists"))
        .expect("output is reachable");
    println!("--- arrival at `out`: {arrival:.3} ns ---");
    Ok(())
}
