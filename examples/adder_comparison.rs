//! Design exploration with the analyzer: ripple-carry vs Manchester
//! carry-chain adders — the decision a 1983 datapath designer made with
//! exactly this kind of tool.
//!
//! Run with: `cargo run --release --example adder_comparison`

use nmos_tv::core::{AnalysisOptions, Analyzer};
use nmos_tv::gen::adder::ripple_carry_adder;
use nmos_tv::gen::manchester::manchester_adder;
use nmos_tv::netlist::Tech;

fn main() {
    let tech = Tech::nmos4um();
    let opts = AnalysisOptions::default();
    println!(
        "{:>6} {:>12} {:>14} {:>16} {:>10}",
        "width", "ripple (ns)", "manch. (ns)", "manch./buf4 (ns)", "winner"
    );
    for width in [4usize, 8, 16, 32] {
        let ripple = ripple_carry_adder(tech.clone(), width);
        let r = Analyzer::new(&ripple.netlist)
            .run(&opts)
            .arrival(ripple.output)
            .expect("reachable");

        let manch = |buffer_every: usize| {
            let m = manchester_adder(tech.clone(), width, buffer_every);
            Analyzer::new(&m.netlist)
                .run(&opts)
                .phase(0)
                .expect("phase 0")
                .result
                .arrival(*m.chain.last().expect("nonempty"))
                .expect("reachable")
        };
        let m0 = manch(0);
        let m4 = manch(4);
        let best = r.min(m0).min(m4);
        let winner = if best == r {
            "ripple"
        } else if best == m0 {
            "manchester"
        } else {
            "manch/buf4"
        };
        println!("{width:>6} {r:>12.3} {m0:>14.3} {m4:>16.3} {winner:>10}");
    }
    println!();
    println!("The verifier shows the architecture story: the precharged chain is");
    println!("fast until its own quadratic RC catches up; buffers every 4 bits");
    println!("keep it linear.");
}
