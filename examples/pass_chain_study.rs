//! The pass-transistor chain study (figure F1): delay grows quadratically
//! with chain length, and buffer insertion restores linearity.
//!
//! Run with: `cargo run --release --example pass_chain_study`

use nmos_tv::core::{AnalysisOptions, Analyzer};
use nmos_tv::gen::chains::{buffered_pass_chain, pass_chain, PASS_NODE_WIRE_PF};
use nmos_tv::netlist::Tech;
use nmos_tv::rc::passchain::{chain_elmore, optimal_buffer_interval};

/// The analyzer's falling-transfer arrival at the output (the measured
/// edge: input rises, the chain falls, the receiver restores a rise).
fn chain_delay(c: &nmos_tv::gen::Circuit) -> f64 {
    Analyzer::new(&c.netlist)
        .run(&AnalysisOptions::default())
        .combinational
        .arrivals
        .rise(c.output)
        .expect("output rises")
}

fn main() {
    let tech = Tech::nmos4um();

    // Closed-form prediction for the chain section, from tv-rc: every
    // chain node carries the generator's wire capacitance plus two
    // diffusion junctions, and the fall is driven through the driver
    // inverter's pull-down.
    let s = tech.min_size();
    let r_pass = tech.channel_resistance(s, s);
    let c_node = PASS_NODE_WIRE_PF + 2.0 * tech.diffusion_capacitance(s);
    let r_driver = tech.channel_resistance(2.0 * s, s);
    println!("closed-form: T(n) = Rd·nC + R·C·n(n+1)/2");
    println!("  with Rd = {r_driver} kΩ, R = {r_pass} kΩ, C = {c_node:.4} pF");
    println!();

    // A realistic restoring-buffer cost: one inverter pair's worth of
    // delay at these loads.
    let t_buf = 4.0;
    let k = optimal_buffer_interval(r_pass, c_node, t_buf);
    println!(
        "{:>4} {:>14} {:>16} {:>16}",
        "n", "raw TV (ns)", "buffered@k (ns)", "chain term (ns)"
    );
    for n in [1usize, 2, 3, 4, 6, 8, 10, 12] {
        let raw = chain_delay(&pass_chain(tech.clone(), n));
        let buffered = chain_delay(&buffered_pass_chain(tech.clone(), n, k));
        let formula = chain_elmore(r_driver, r_pass, c_node, n);
        println!("{n:>4} {raw:>14.3} {buffered:>16.3} {formula:>16.3}");
    }
    println!();
    println!("buffer interval k* = {k} (from sqrt(2·t_buf / RC), t_buf = {t_buf} ns)");
    println!("raw grows quadratically; the buffered chain grows linearly past k*.");
}
