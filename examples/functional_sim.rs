//! Functional verification by transient simulation: clock the generated
//! Manchester adder through a precharge/evaluate cycle and check that the
//! analog node voltages spell out the correct binary sum.
//!
//! This is the strongest evidence the generators produce *working*
//! circuits, not just analyzable ones.
//!
//! Run with: `cargo run --release --example functional_sim`

use nmos_tv::gen::manchester::manchester_adder;
use nmos_tv::netlist::Tech;
use nmos_tv::sim::{SimOptions, Simulator, Stimulus, Waveform};

fn main() {
    let tech = Tech::nmos4um();
    let width = 2;
    let m = manchester_adder(tech.clone(), width, 0);

    // Exhaustively check every (a, b, cin) combination.
    let mut failures = 0;
    for a_val in 0..(1u32 << width) {
        for b_val in 0..(1u32 << width) {
            for cin in 0..2u32 {
                let got = simulate_add(&m, &tech, width, a_val, b_val, cin);
                let expect = (a_val + b_val + cin) & ((1 << width) - 1);
                let status = if got == expect { "ok " } else { "FAIL" };
                if got != expect {
                    failures += 1;
                }
                println!(
                    "{a_val:0w$b} + {b_val:0w$b} + {cin} = {expect:0w$b}  sim {got:0w$b}  {status}",
                    w = width
                );
            }
        }
    }
    assert_eq!(failures, 0, "{failures} functional failures");
    println!(
        "\nall {} input combinations add correctly",
        (1 << width) * (1 << width) * 2
    );
}

/// Applies one input vector, runs precharge then evaluate, and reads the
/// sum bits at the end of the evaluate phase.
fn simulate_add(
    m: &nmos_tv::gen::manchester::ManchesterAdder,
    tech: &Tech,
    width: usize,
    a_val: u32,
    b_val: u32,
    cin: u32,
) -> u32 {
    let nl = &m.netlist;
    let mut stim = Stimulus::new(nl);
    let bit = |v: u32, i: usize| {
        if (v >> i) & 1 == 1 {
            tech.vdd
        } else {
            0.0
        }
    };
    for i in 0..width {
        let a = nl.node_by_name(&format!("a{i}")).expect("a pin");
        let b = nl.node_by_name(&format!("b{i}")).expect("b pin");
        stim.drive(a, Waveform::Const(bit(a_val, i)));
        stim.drive(b, Waveform::Const(bit(b_val, i)));
    }
    // The chain entry is active-low: pin high means "no carry in".
    let cin_pin = nl.node_by_name("cin").expect("cin pin");
    stim.drive(
        cin_pin,
        Waveform::Const(if cin == 1 { 0.0 } else { tech.vdd }),
    );

    // One cycle: φ2 precharge for 150 ns, 10 ns gap, φ1 evaluate 240 ns.
    let cycle = 400.0;
    stim.drive(
        m.phi2,
        Waveform::Pulse {
            t0: 0.0,
            period: cycle,
            width: 150.0,
            v0: 0.0,
            v1: tech.vdd,
        },
    );
    stim.drive(
        m.phi1,
        Waveform::Pulse {
            t0: 160.0,
            period: cycle,
            width: 230.0,
            v0: 0.0,
            v1: tech.vdd,
        },
    );

    let mut opts = SimOptions::for_duration(cycle);
    opts.settle = 120.0; // p/g logic settles; chain state set by precharge
    let result = Simulator::new(nl, stim, opts).run();

    // Read sums just before evaluate closes.
    let mut out = 0u32;
    for (i, &s) in m.sums.iter().enumerate() {
        let v = result
            .trace(s)
            .and_then(|tr| tr.sample(385.0))
            .expect("sum recorded");
        if v > tech.switch_voltage() {
            out |= 1 << i;
        }
    }
    out
}
