//! The electrical rule checker on a deliberately buggy design: ratio
//! violations, charge sharing, an unresolvable pass direction, and a
//! clock-qualification conflict — every diagnostic class TV reported.
//!
//! Run with: `cargo run --example electrical_checks`

use nmos_tv::core::{AnalysisOptions, Analyzer};
use nmos_tv::netlist::{NetlistBuilder, NetlistError, Tech};

fn main() -> Result<(), NetlistError> {
    let mut b = NetlistBuilder::new(Tech::nmos4um());
    let a = b.input("a");
    let phi1 = b.clock("phi1", 0);
    let phi2 = b.clock("phi2", 1);

    // Bug 1: a "fast" inverter some junior designer sized 1:1 — the low
    // level will sit near VDD/2.
    let weak = b.output("weak_out");
    b.depletion_load(weak, 4.0, 8.0);
    let gnd = b.gnd();
    b.enhancement("weak_pd", a, gnd, weak, 4.0, 8.0);

    // Bug 2: a φ1 latch whose storage node shares charge with a long
    // undriven wire through a φ2 pass gate.
    let qb = b.node("qb");
    let store = b.dynamic_latch("lat", phi1, a, qb);
    let wire = b.node("long_wire");
    b.pass("share", phi2, store, wire);
    b.add_cap(wire, 0.8)?;
    let stub = b.node("stub");
    b.pass("share2", phi2, wire, stub);

    // Bug 3: a pass transistor between two undriven nodes: no rule can
    // orient it.
    let m1 = b.node("m1");
    let m2 = b.node("m2");
    b.pass("mystery", a, m1, m2);
    let m3 = b.node("m3");
    b.pass("mystery2", a, m2, m3);

    // Bug 4: a gate mixing both clock phases.
    let mix = b.node("mixed");
    b.nand("mixer", &[phi1, phi2], mix);

    let netlist = b.finish()?;
    let report = Analyzer::new(&netlist).run(&AnalysisOptions::default());

    println!("found {} issue(s):", report.checks.len());
    for issue in &report.checks {
        println!("  - {}", issue.display(&netlist));
    }
    assert!(
        report.checks.len() >= 4,
        "the seeded bugs must all be caught"
    );
    Ok(())
}
