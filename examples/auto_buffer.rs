//! The analyzer driving optimization: find long pass runs, splice in
//! restoring buffers, and show the before/after timing — the "what these
//! tools were for" demo.
//!
//! Run with: `cargo run --release --example auto_buffer`

use nmos_tv::core::{buffer_long_pass_runs, AnalysisOptions, Analyzer};
use nmos_tv::gen::chains::pass_chain;
use nmos_tv::gen::shifter::barrel_shifter;
use nmos_tv::netlist::Tech;

fn main() {
    let tech = Tech::nmos4um();
    let opts = AnalysisOptions::default();

    println!(
        "{:<18} {:>12} {:>12} {:>9} {:>8}",
        "circuit", "before (ns)", "after (ns)", "buffers", "devices"
    );
    for (name, circuit) in [
        ("pass-chain-6", pass_chain(tech.clone(), 6)),
        ("pass-chain-10", pass_chain(tech.clone(), 10)),
        ("pass-chain-16", pass_chain(tech.clone(), 16)),
        ("barrel-16x4", barrel_shifter(tech.clone(), 16, 4)),
    ] {
        let before = Analyzer::new(&circuit.netlist)
            .run(&opts)
            .combinational
            .arrivals
            .rise(circuit.output)
            .expect("reachable");

        let result = buffer_long_pass_runs(&circuit.netlist, 3).expect("valid run limit");
        let out = result
            .netlist
            .node_by_name(circuit.netlist.node_name(circuit.output))
            .expect("output survives the edit");
        let after = Analyzer::new(&result.netlist)
            .run(&opts)
            .combinational
            .arrivals
            .rise(out)
            .expect("still reachable");

        println!(
            "{:<18} {:>12.3} {:>12.3} {:>9} {:>8}",
            name,
            before,
            after,
            result.inserted,
            result.netlist.device_count(),
        );
    }
    println!();
    println!("runs longer than 3 pass devices get an inverter pair; short");
    println!("structures (the barrel shifter's single-level crossbar) are untouched.");
}
