//! Analyze a MIPS-class 32-bit two-phase datapath — the reproduction of
//! running TV over the Stanford MIPS chip.
//!
//! Run with: `cargo run --release --example mips_datapath`

use std::time::Instant;

use nmos_tv::core::{AnalysisOptions, Analyzer};
use nmos_tv::gen::datapath::{datapath, DatapathConfig};
use nmos_tv::netlist::Tech;

fn main() {
    let config = DatapathConfig::mips32();
    let t0 = Instant::now();
    let dp = datapath(Tech::nmos4um(), config);
    let gen_time = t0.elapsed();
    println!(
        "generated {}-bit datapath: {} transistors, {} nodes in {:.1} ms",
        config.width,
        dp.netlist.device_count(),
        dp.netlist.node_count(),
        gen_time.as_secs_f64() * 1e3,
    );

    let t1 = Instant::now();
    let report = Analyzer::new(&dp.netlist).run(&AnalysisOptions::default());
    let analyze_time = t1.elapsed();
    println!(
        "analyzed in {:.1} ms ({:.0} devices/ms)",
        analyze_time.as_secs_f64() * 1e3,
        dp.netlist.device_count() as f64 / (analyze_time.as_secs_f64() * 1e3),
    );
    println!();
    print!("{}", report.render(&dp.netlist));

    // The top-5 critical paths of each phase, the way TV reported them.
    for phase in &report.phases {
        println!("\n=== phase {} top paths ===", phase.phase + 1);
        for (i, path) in phase.paths.iter().take(5).enumerate() {
            println!(
                "#{} arrival {:.3} ns, {} steps, endpoint {}",
                i + 1,
                path.arrival(),
                path.len(),
                dp.netlist.node_name(path.endpoint()),
            );
        }
        if let Some(worst) = phase.paths.first() {
            println!("worst path detail:");
            print!("{}", worst.display(&dp.netlist));
        }
    }
}
