//! Validate TV's static estimates against the transient simulator, the
//! way the paper validated against SPICE (table T1).
//!
//! Run with: `cargo run --release --example spice_compare`

use nmos_tv::core::{AnalysisOptions, Analyzer};
use nmos_tv::gen::workload::t1_suite;
use nmos_tv::netlist::Tech;
use nmos_tv::sim::{measure, SimOptions, Simulator, Stimulus, Waveform};

fn main() {
    let tech = Tech::nmos4um();
    println!(
        "{:<20} {:>12} {:>12} {:>8}",
        "circuit", "static (ns)", "sim (ns)", "ratio"
    );
    for item in t1_suite(&tech) {
        let nl = &item.circuit.netlist;
        let input = item.circuit.input;
        let output = item.circuit.output;

        // Static estimate on the edge the measurement exercises.
        let report = Analyzer::new(nl).run(&AnalysisOptions::default());
        let est = if item.output_falls_on_input_rise {
            report.combinational.arrivals.fall(output)
        } else {
            report.combinational.arrivals.rise(output)
        }
        .expect("output reachable");

        // Transient measurement: toggle the input, watch the output.
        let mut stim = Stimulus::new(nl);
        stim.drive(input, Waveform::step_up(1.0, tech.vdd));
        for name in ["en", "phi1"] {
            if let Some(node) = nl.node_by_name(name) {
                let level = if name == "en" && item.name.starts_with("nor") {
                    0.0
                } else {
                    tech.vdd
                };
                stim.drive(node, Waveform::Const(level));
            }
        }
        for sel in 0..8 {
            if let Some(node) = nl.node_by_name(&format!("sel{sel}")) {
                stim.drive(node, Waveform::Const(tech.vdd));
            }
        }
        let result = Simulator::new(nl, stim, SimOptions::for_duration(100.0)).run();
        let meas = measure::delay_50(&result, input, output, &tech);

        match meas {
            Some(m) if m > 0.0 => {
                println!(
                    "{:<20} {:>12.3} {:>12.3} {:>8.2}",
                    item.name,
                    est,
                    m,
                    est / m
                );
            }
            _ => println!("{:<20} {:>12.3} {:>12} {:>8}", item.name, est, "-", "-"),
        }
    }
    println!("\nratio > 1 means the static estimate is conservative (late).");
}
