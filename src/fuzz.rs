//! Deterministic mutation fuzzing of the `.sim` ingest-and-analysis
//! pipeline.
//!
//! The fuzzer takes a small corpus of *valid* netlists (a handwritten
//! two-phase latch chain plus generated circuits from [`tv_gen`]),
//! applies a seeded sequence of byte- and line-level mutations —
//! truncation, line deletion/duplication, character swaps, garbage
//! tokens, BOM injection, CRLF conversion, digit corruption — and feeds
//! each mutant through [`tv_netlist::sim_format::parse_recovering`] and,
//! when a netlist comes out, the full [`tv_core::Analyzer`] under a small
//! relaxation budget.
//!
//! Two properties are checked on every iteration:
//!
//! 1. **No panics.** The pipeline must reject arbitrary garbage with
//!    diagnostics, never by unwinding.
//! 2. **No silent rejections.** When parsing fails to produce a netlist,
//!    at least one diagnostic must explain why.
//!
//! Everything is driven by one [`tv_gen::rng::Rng64`] stream, so a given
//! `(seed, iterations)` pair replays bit-identically — a failing
//! iteration number is a reproducer.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::rng::Rng64;
use tv_gen::{chains, random};
use tv_netlist::{sim_format, Diagnostics, Tech};

/// A pipeline failure the fuzzer found.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Which iteration (0-based) produced the failing input.
    pub iteration: usize,
    /// What went wrong.
    pub kind: FailureKind,
    /// The mutated input, for reproduction.
    pub input: String,
}

/// The property a fuzz iteration violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The parse or analysis panicked; carries the panic payload when it
    /// was a string.
    Panic(String),
    /// Parsing rejected the input without emitting a single diagnostic.
    SilentRejection,
}

/// Aggregate outcome of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Mutants that still parsed to a netlist (possibly with recovered
    /// errors) and were analyzed.
    pub analyzed: usize,
    /// Mutants the parser rejected — each must have carried diagnostics.
    pub rejected: usize,
    /// Total diagnostics emitted across all iterations.
    pub diagnostics: usize,
    /// Property violations. An empty list is a passing run.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Whether every iteration upheld both fuzz properties.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzz: {} iterations, {} analyzed, {} rejected, {} diagnostics",
            self.iterations, self.analyzed, self.rejected, self.diagnostics
        )?;
        if self.is_clean() {
            write!(f, "fuzz: no panics, no silent rejections")
        } else {
            for fail in &self.failures {
                match &fail.kind {
                    FailureKind::Panic(msg) => {
                        writeln!(f, "fuzz: PANIC at iteration {}: {}", fail.iteration, msg)?
                    }
                    FailureKind::SilentRejection => {
                        writeln!(f, "fuzz: SILENT REJECTION at iteration {}", fail.iteration)?
                    }
                }
            }
            write!(f, "fuzz: {} failure(s)", self.failures.len())
        }
    }
}

/// The valid seed corpus the mutator perturbs.
fn corpus() -> Vec<String> {
    let latch = "\
| tiny two-phase latch chain
i d
k phi1 0
k phi2 1
e d VDD x 4 8
d x VDD x 8 4
e phi1 x m 4 4
e m GND qb 4 8
d qb VDD qb 8 4
e phi2 qb q2 4 4
e q2 GND out 4 8
d out VDD out 8 4
o out
C out 100
"
    .to_string();
    let logic = sim_format::write(
        &random::random_logic(Tech::nmos4um(), 120, 0x5EED, random::RandomMix::default()).netlist,
    );
    let inv = sim_format::write(&chains::inverter_chain(Tech::nmos4um(), 8, 2).netlist);
    let pass = sim_format::write(&chains::pass_chain(Tech::nmos4um(), 6).netlist);
    vec![latch, logic, inv, pass]
}

/// Applies one random mutation to `text`. Operates on `char` boundaries
/// so every mutant stays valid UTF-8 (the parser's input type).
fn mutate(text: &mut String, rng: &mut Rng64) {
    const GARBAGE: &[char] = &[
        'x', 'q', '0', '9', '|', '.', '-', '+', 'e', 'C', '\t', '\u{1}', '\u{7f}', '~', '#',
    ];
    match rng.usize_range(0, 9) {
        // Truncate mid-stream: exercises partial final lines.
        0 => {
            let chars: Vec<char> = text.chars().collect();
            if chars.len() > 2 {
                let cut = rng.usize_range(1, chars.len());
                *text = chars[..cut].iter().collect();
            }
        }
        // Delete a random line.
        1 => {
            let lines: Vec<&str> = text.lines().collect();
            if lines.len() > 1 {
                let victim = rng.usize_range(0, lines.len());
                let mut kept: Vec<&str> = Vec::with_capacity(lines.len());
                for (i, l) in lines.iter().enumerate() {
                    if i != victim {
                        kept.push(l);
                    }
                }
                *text = kept.join("\n");
                text.push('\n');
            }
        }
        // Duplicate a random line (duplicate records must not crash).
        2 => {
            let lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let pick = rng.usize_range(0, lines.len());
                let dup = lines[pick].to_string();
                let mut out = lines.join("\n");
                out.push('\n');
                out.push_str(&dup);
                out.push('\n');
                *text = out;
            }
        }
        // Swap two characters.
        3 => {
            let mut chars: Vec<char> = text.chars().collect();
            if chars.len() > 3 {
                let a = rng.usize_range(0, chars.len());
                let b = rng.usize_range(0, chars.len());
                chars.swap(a, b);
                *text = chars.into_iter().collect();
            }
        }
        // Overwrite a character with garbage.
        4 => {
            let mut chars: Vec<char> = text.chars().collect();
            if !chars.is_empty() {
                let at = rng.usize_range(0, chars.len());
                chars[at] = GARBAGE[rng.usize_range(0, GARBAGE.len())];
                *text = chars.into_iter().collect();
            }
        }
        // Insert a garbage token at the start of a random line.
        5 => {
            let lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let at = rng.usize_range(0, lines.len());
                let mut out = String::new();
                for (i, l) in lines.iter().enumerate() {
                    if i == at {
                        out.push_str("zzz ");
                    }
                    out.push_str(l);
                    out.push('\n');
                }
                *text = out;
            }
        }
        // Prepend a UTF-8 BOM.
        6 => {
            if !text.starts_with('\u{feff}') {
                text.insert(0, '\u{feff}');
            }
        }
        // Convert to CRLF line endings.
        7 => {
            *text = text.replace('\n', "\r\n");
        }
        // Corrupt the first digit found after a random offset.
        _ => {
            let mut chars: Vec<char> = text.chars().collect();
            if !chars.is_empty() {
                let start = rng.usize_range(0, chars.len());
                if let Some(at) = (start..chars.len()).find(|&i| chars[i].is_ascii_digit()) {
                    chars[at] = if rng.bool(0.5) { 'x' } else { '-' };
                    *text = chars.into_iter().collect();
                }
            }
        }
    }
}

/// Runs `iterations` deterministic fuzz iterations from `seed`.
///
/// Each iteration picks a corpus entry, applies 1–4 mutations, parses it
/// with recovery, and — when a netlist survives — runs the full analyzer
/// with a small relaxation budget (mutation can create cycles; the guard
/// keeps pathological mutants from dominating the run). No deadline is
/// used, so the run is machine-independent.
pub fn run(iterations: usize, seed: u64) -> FuzzReport {
    let corpus = corpus();
    let mut rng = Rng64::new(seed);
    let mut report = FuzzReport {
        iterations,
        analyzed: 0,
        rejected: 0,
        diagnostics: 0,
        failures: Vec::new(),
    };

    for iteration in 0..iterations {
        let mut input = corpus[rng.usize_range(0, corpus.len())].clone();
        for _ in 0..rng.usize_inclusive(1, 4) {
            mutate(&mut input, &mut rng);
        }

        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let mut diags = Diagnostics::with_max_errors(64);
            let parsed = sim_format::parse_recovering(&input, Tech::nmos4um(), &mut diags);
            let analyzed = match &parsed {
                Ok(nl) => {
                    let opts = AnalysisOptions {
                        relax_budget: Some(50_000),
                        ..AnalysisOptions::default()
                    };
                    let _ = Analyzer::new(nl).run(&opts);
                    true
                }
                Err(_) => false,
            };
            (analyzed, parsed.is_err(), diags.len())
        }));

        match attempt {
            Ok((analyzed, rejected, ndiags)) => {
                report.diagnostics += ndiags;
                if analyzed {
                    report.analyzed += 1;
                }
                if rejected {
                    report.rejected += 1;
                    if ndiags == 0 {
                        report.failures.push(FuzzFailure {
                            iteration,
                            kind: FailureKind::SilentRejection,
                            input: input.clone(),
                        });
                    }
                }
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                report.failures.push(FuzzFailure {
                    iteration,
                    kind: FailureKind::Panic(msg),
                    input: input.clone(),
                });
            }
        }
    }
    report
}

/// Aggregate outcome of a `--faults` fuzz run ([`run_faults`]).
#[derive(Debug, Clone)]
pub struct FaultFuzzReport {
    /// Iterations executed (one random session script each).
    pub iterations: usize,
    /// Iterations whose armed plan actually fired.
    pub triggered: usize,
    /// Fired iterations whose result bits matched the fault-free run
    /// (byte-identical or via a documented repair).
    pub recovered: usize,
    /// Fired iterations that failed loudly with a non-zero exit code.
    pub loud: usize,
    /// Contract violations (escaped panics, silent divergence). An
    /// empty list is a passing run.
    pub failures: Vec<String>,
}

impl FaultFuzzReport {
    /// Whether every iteration upheld the recovery contract.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for FaultFuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzz-faults: {} iterations, {} triggered, {} recovered, {} loud",
            self.iterations, self.triggered, self.recovered, self.loud
        )?;
        if self.is_clean() {
            write!(f, "fuzz-faults: no panics, no silent divergence")
        } else {
            for fail in &self.failures {
                writeln!(f, "fuzz-faults: FAILURE {fail}")?;
            }
            write!(f, "fuzz-faults: {} failure(s)", self.failures.len())
        }
    }
}

/// One random session script over the small demo: a seeded mix of
/// analyzes, edits of every class, and queries, always ending in an
/// `analyze` so every iteration compares a final fingerprint.
fn random_session_script(rng: &mut Rng64) -> Vec<String> {
    let mut script = vec!["demo small".to_string()];
    for _ in 0..rng.usize_inclusive(3, 10) {
        script.push(match rng.usize_range(0, 6) {
            0 => "analyze".to_string(),
            1 => "flow".to_string(),
            2 => "revision".to_string(),
            3 => format!("edit resize pu_wq0 {} 2", [4, 6, 8][rng.usize_range(0, 3)]),
            4 => format!("edit setcap out0 0.0{}", rng.usize_inclusive(1, 9)),
            _ => "edit retech nmos2um".to_string(),
        });
    }
    script.push("analyze".to_string());
    script
}

/// The `--faults` fuzz mode: `iterations` seeded random session scripts,
/// each run fault-free and then under a seeded [`tv_fault::FaultPlan`],
/// holding the pair to the same recovery contract `tv chaos` enforces —
/// no panic escapes the session loop, and every reply either matches
/// the fault-free result bits or fails loudly.
pub fn run_faults(iterations: usize, seed: u64) -> std::io::Result<FaultFuzzReport> {
    use crate::chaos::{classify, run_script, with_quiet_panics, Outcome};

    let options = AnalysisOptions::default();
    let mut rng = Rng64::new(seed);
    let mut report = FaultFuzzReport {
        iterations,
        triggered: 0,
        recovered: 0,
        loud: 0,
        failures: Vec::new(),
    };
    with_quiet_panics(|| -> std::io::Result<()> {
        for iteration in 0..iterations {
            let script = random_session_script(&mut rng);
            let plan = tv_fault::FaultPlan::from_seed(rng.next_u64());
            tv_fault::disarm();
            let (baseline, base_code) = run_script(&script, &options, None, None)?;
            tv_fault::arm(plan);
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                run_script(&script, &options, None, None)
            }));
            let fired = tv_fault::fired();
            tv_fault::disarm();
            let outcome = match attempt {
                Err(_) => Outcome::Violation("panic escaped the session loop".into()),
                Ok(Err(e)) => Outcome::Violation(format!("session loop I/O error: {e}")),
                Ok(Ok((replies, code))) => classify(&baseline, base_code, &replies, code, fired),
            };
            if fired {
                report.triggered += 1;
            }
            match outcome {
                Outcome::NotTriggered => {}
                Outcome::Absorbed | Outcome::Recovered => report.recovered += 1,
                Outcome::Loud => report.loud += 1,
                Outcome::Violation(v) => report.failures.push(format!(
                    "iteration {iteration} site {} after {}: {v}",
                    plan.site.name(),
                    plan.after
                )),
            }
        }
        Ok(())
    })?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_run_is_deterministic() {
        let a = run(40, 7);
        let b = run(40, 7);
        assert_eq!(a.analyzed, b.analyzed);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.diagnostics, b.diagnostics);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn short_fuzz_run_is_clean() {
        let r = run(60, 0xF00D);
        assert!(r.is_clean(), "{r}");
        assert!(r.analyzed + r.rejected == r.iterations);
        assert!(r.diagnostics > 0, "mutations should trip diagnostics");
    }

    #[test]
    fn corpus_parses_cleanly_unmutated() {
        for (i, text) in corpus().iter().enumerate() {
            let mut diags = Diagnostics::new();
            let nl = sim_format::parse_recovering(text, Tech::nmos4um(), &mut diags)
                .unwrap_or_else(|e| panic!("corpus {i} failed: {e}"));
            assert!(nl.device_count() > 0, "corpus {i} is empty");
            assert!(!diags.has_errors(), "corpus {i} has errors");
        }
    }
}
