//! `tv` — the command-line timing verifier.
//!
//! The shape of the original tool: read an extracted `.sim` netlist, run
//! the full analysis, print the report. Subcommands:
//!
//! ```text
//! tv analyze <file.sim> [--cycle NS] [--no-case] [--model lumped|elmore|upper] [--top K]
//! tv check   <file.sim>            # electrical rules only
//! tv flow    <file.sim>            # signal-flow resolution statistics
//! tv query   <file.sim> <from> <to># point-to-point worst path
//! tv spice   <file.sim>            # convert to a SPICE deck on stdout
//! tv demo                          # analyze a built-in MIPS-class datapath
//! ```
//!
//! Exit status: 0 on success, 1 on usage/parse errors, 2 when the analysis
//! finds violations (negative slack, races, or electrical issues) — so the
//! tool drops into Makefiles the way its ancestor did.

use std::process::ExitCode;

use nmos_tv::clocks::TwoPhaseClock;
use nmos_tv::core::{AnalysisOptions, Analyzer, DelayModel};
use nmos_tv::flow::{analyze as flow_analyze, RuleSet};
use nmos_tv::netlist::{sim_format, spice, Netlist, Tech};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        Err(msg) => {
            eprintln!("tv: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  tv analyze <file.sim> [--cycle NS] [--no-case] [--model lumped|elmore|upper] [--top K]
  tv check   <file.sim>
  tv flow    <file.sim>
  tv query   <file.sim> <from-node> <to-node>
  tv spice   <file.sim>
  tv demo";

fn run(args: &[String]) -> Result<bool, String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "analyze" => {
            let (netlist, rest) = load(&args[1..])?;
            let options = parse_options(rest)?;
            let report = Analyzer::new(&netlist).run(&options);
            print!("{}", report.render(&netlist));
            let slack_ok = report
                .phases
                .iter()
                .all(|p| p.slack.is_none_or(|s| s >= 0.0));
            let race_free = report.phases.iter().all(|p| p.races.is_empty());
            Ok(report.checks.is_empty() && slack_ok && race_free)
        }
        "check" => {
            let (netlist, _) = load(&args[1..])?;
            let report = Analyzer::new(&netlist).run(&AnalysisOptions::default());
            if report.checks.is_empty() {
                println!("electrical checks: clean");
            } else {
                for issue in &report.checks {
                    println!("{}", issue.display(&netlist));
                }
            }
            Ok(report.checks.is_empty())
        }
        "flow" => {
            let (netlist, _) = load(&args[1..])?;
            let flow = flow_analyze(&netlist, &RuleSet::all());
            println!("{}", flow.report(&netlist));
            Ok(flow.unresolved(&netlist).count() == 0)
        }
        "query" => {
            let (netlist, rest) = load(&args[1..])?;
            let [from_name, to_name] = rest else {
                return Err("query needs <from-node> <to-node>".into());
            };
            let from = netlist
                .node_by_name(from_name)
                .ok_or_else(|| format!("no node named {from_name:?}"))?;
            let to = netlist
                .node_by_name(to_name)
                .ok_or_else(|| format!("no node named {to_name:?}"))?;
            match Analyzer::new(&netlist).path_query(from, to, &AnalysisOptions::default()) {
                Some(path) => {
                    println!(
                        "worst path {} -> {}: {:.3} ns, {} steps",
                        from_name,
                        to_name,
                        path.arrival(),
                        path.len()
                    );
                    print!("{}", path.display(&netlist));
                    Ok(true)
                }
                None => {
                    println!("{to_name} is not reachable from {from_name}");
                    Ok(false)
                }
            }
        }
        "spice" => {
            let (netlist, _) = load(&args[1..])?;
            print!("{}", spice::write(&netlist));
            Ok(true)
        }
        "demo" => {
            let dp = nmos_tv::gen::datapath::datapath(
                Tech::nmos4um(),
                nmos_tv::gen::datapath::DatapathConfig::mips32(),
            );
            let report = Analyzer::new(&dp.netlist).run(&AnalysisOptions::default());
            print!("{}", report.render(&dp.netlist));
            Ok(true)
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Loads the `.sim` file named by the first argument; returns the netlist
/// and the remaining arguments.
fn load(args: &[String]) -> Result<(Netlist, &[String]), String> {
    let path = args.first().ok_or("missing <file.sim>")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let netlist =
        sim_format::parse(&text, Tech::nmos4um()).map_err(|e| format!("parse {path}: {e}"))?;
    Ok((netlist, &args[1..]))
}

fn parse_options(args: &[String]) -> Result<AnalysisOptions, String> {
    let mut options = AnalysisOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--no-case" => options.case_analysis = false,
            "--cycle" => {
                let v = it.next().ok_or("--cycle needs a value")?;
                let cycle: f64 = v.parse().map_err(|_| format!("bad cycle {v:?}"))?;
                options.clock = TwoPhaseClock::symmetric(cycle, cycle * 0.02);
            }
            "--model" => {
                let v = it.next().ok_or("--model needs a value")?;
                options.model = match v.as_str() {
                    "lumped" => DelayModel::Lumped,
                    "elmore" => DelayModel::Elmore,
                    "upper" => DelayModel::UpperBound,
                    other => return Err(format!("unknown model {other:?}")),
                };
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                options.top_k = v.parse().map_err(|_| format!("bad top-k {v:?}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}
