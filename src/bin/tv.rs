//! `tv` — the command-line timing verifier.
//!
//! The shape of the original tool: read an extracted `.sim` netlist, run
//! the full analysis, print the report. Subcommands:
//!
//! ```text
//! tv analyze <file.sim> [--cycle NS] [--no-case] [--model lumped|elmore|upper]
//!                       [--top K] [--jobs N] [--incremental]
//! tv check   <file.sim>            # electrical rules only
//! tv flow    <file.sim>            # signal-flow resolution statistics
//! tv query   <file.sim> <from> <to># point-to-point worst path
//! tv spice   <file.sim>            # convert to a SPICE deck on stdout
//! tv demo    [--jobs N]            # analyze a built-in MIPS-class datapath
//! ```
//!
//! `--jobs N` fans graph construction and levelized propagation out over
//! `N` threads (`0` = all cores) with bit-identical results;
//! `--incremental` reuses clean cones between the run's analysis cases.
//!
//! Exit status: 0 on success, 1 on usage/parse errors, 2 when the analysis
//! finds violations (negative slack, races, or electrical issues) — so the
//! tool drops into Makefiles the way its ancestor did.

use std::process::ExitCode;

use nmos_tv::clocks::TwoPhaseClock;
use nmos_tv::core::{AnalysisOptions, Analyzer, DelayModel, TvError};
use nmos_tv::flow::{analyze as flow_analyze, RuleSet};
use nmos_tv::netlist::{sim_format, spice, Netlist, Tech};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        Err(msg) => {
            eprintln!("tv: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  tv analyze <file.sim> [--cycle NS] [--no-case] [--model lumped|elmore|upper]
                        [--top K] [--jobs N] [--incremental]
  tv check   <file.sim>
  tv flow    <file.sim>
  tv query   <file.sim> <from-node> <to-node>
  tv spice   <file.sim>
  tv demo    [--jobs N]";

fn run(args: &[String]) -> Result<bool, TvError> {
    let cmd = args
        .first()
        .ok_or_else(|| TvError::Usage("missing subcommand".into()))?;
    match cmd.as_str() {
        "analyze" => {
            let (netlist, rest) = load(&args[1..])?;
            let options = parse_options(rest)?;
            let report = Analyzer::new(&netlist).run(&options);
            print!("{}", report.render(&netlist));
            let slack_ok = report
                .phases
                .iter()
                .all(|p| p.slack.is_none_or(|s| s >= 0.0));
            let race_free = report.phases.iter().all(|p| p.races.is_empty());
            Ok(report.checks.is_empty() && slack_ok && race_free)
        }
        "check" => {
            let (netlist, _) = load(&args[1..])?;
            let report = Analyzer::new(&netlist).run(&AnalysisOptions::default());
            if report.checks.is_empty() {
                println!("electrical checks: clean");
            } else {
                for issue in &report.checks {
                    println!("{}", issue.display(&netlist));
                }
            }
            Ok(report.checks.is_empty())
        }
        "flow" => {
            let (netlist, _) = load(&args[1..])?;
            let flow = flow_analyze(&netlist, &RuleSet::all());
            println!("{}", flow.report(&netlist));
            Ok(flow.unresolved(&netlist).count() == 0)
        }
        "query" => {
            let (netlist, rest) = load(&args[1..])?;
            let [from_name, to_name] = rest else {
                return Err(TvError::Usage("query needs <from-node> <to-node>".into()));
            };
            let from = netlist
                .node_by_name(from_name)
                .ok_or_else(|| TvError::UnknownNode(from_name.clone()))?;
            let to = netlist
                .node_by_name(to_name)
                .ok_or_else(|| TvError::UnknownNode(to_name.clone()))?;
            match Analyzer::new(&netlist).path_query(from, to, &AnalysisOptions::default()) {
                Some(path) => {
                    println!(
                        "worst path {} -> {}: {:.3} ns, {} steps",
                        from_name,
                        to_name,
                        path.arrival(),
                        path.len()
                    );
                    print!("{}", path.display(&netlist));
                    Ok(true)
                }
                None => {
                    println!("{to_name} is not reachable from {from_name}");
                    Ok(false)
                }
            }
        }
        "spice" => {
            let (netlist, _) = load(&args[1..])?;
            print!("{}", spice::write(&netlist));
            Ok(true)
        }
        "demo" => {
            let options = parse_options(&args[1..])?;
            let dp = nmos_tv::gen::datapath::datapath(
                Tech::nmos4um(),
                nmos_tv::gen::datapath::DatapathConfig::mips32(),
            );
            let report = Analyzer::new(&dp.netlist).run(&options);
            print!("{}", report.render(&dp.netlist));
            Ok(true)
        }
        other => Err(TvError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

/// Loads the `.sim` file named by the first argument; returns the netlist
/// and the remaining arguments.
fn load(args: &[String]) -> Result<(Netlist, &[String]), TvError> {
    let path = args
        .first()
        .ok_or_else(|| TvError::Usage("missing <file.sim>".into()))?;
    let text = std::fs::read_to_string(path).map_err(|e| TvError::Io {
        path: path.clone(),
        source: e,
    })?;
    let netlist = sim_format::parse(&text, Tech::nmos4um()).map_err(|e| TvError::Parse {
        path: path.clone(),
        message: e.to_string(),
    })?;
    Ok((netlist, &args[1..]))
}

fn parse_options(args: &[String]) -> Result<AnalysisOptions, TvError> {
    let usage = |msg: &str| TvError::Usage(msg.into());
    let mut options = AnalysisOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--no-case" => options.case_analysis = false,
            "--cycle" => {
                let v = it.next().ok_or_else(|| usage("--cycle needs a value"))?;
                let cycle: f64 = v
                    .parse()
                    .map_err(|_| TvError::Usage(format!("bad cycle {v:?}")))?;
                options.clock = TwoPhaseClock::symmetric(cycle, cycle * 0.02);
            }
            "--model" => {
                let v = it.next().ok_or_else(|| usage("--model needs a value"))?;
                options.model = match v.as_str() {
                    "lumped" => DelayModel::Lumped,
                    "elmore" => DelayModel::Elmore,
                    "upper" => DelayModel::UpperBound,
                    other => return Err(TvError::Usage(format!("unknown model {other:?}"))),
                };
            }
            "--top" => {
                let v = it.next().ok_or_else(|| usage("--top needs a value"))?;
                options.top_k = v
                    .parse()
                    .map_err(|_| TvError::Usage(format!("bad top-k {v:?}")))?;
            }
            "--jobs" => {
                let v = it.next().ok_or_else(|| usage("--jobs needs a value"))?;
                options.jobs = v
                    .parse()
                    .map_err(|_| TvError::Usage(format!("bad job count {v:?}")))?;
            }
            "--incremental" => options.incremental = true,
            other => return Err(TvError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    Ok(options)
}
