//! `tv` — the command-line timing verifier.
//!
//! The shape of the original tool: read an extracted `.sim` netlist, run
//! the full analysis, print the report. Subcommands:
//!
//! ```text
//! tv analyze <file.sim> [--cycle NS] [--no-case] [--model lumped|elmore|upper]
//!                       [--top K] [--jobs N] [--incremental] [--check]
//!                       [--relax-budget N] [--deadline SECS]
//!                       [--max-nodes N] [--max-arcs N]
//! tv check   <file.sim>            # electrical rules only
//! tv flow    <file.sim>            # signal-flow resolution statistics
//! tv query   <file.sim> <from> <to># point-to-point worst path
//! tv spice   <file.sim>            # convert to a SPICE deck on stdout
//! tv gen     [--cores N] [--out F] # generate a multi-core MIPS-class .sim
//! tv demo    [--jobs N]            # analyze a built-in MIPS-class datapath
//! tv session [--journal F | --resume F] # long-lived REPL, crash-safe with a journal
//! tv batch   <script> [--resume F] # replay a session script deterministically
//! tv serve   [--listen ADDR | --unix PATH] # multi-tenant session server
//! tv client  [--connect ADDR | --unix PATH] [script] # replay a script remotely
//! tv loadgen [--connect ADDR | --unix PATH] <script> # concurrent load + percentiles
//! tv fuzz    [--iters N] [--seed S] [--faults] # deterministic ingest/fault fuzzing
//! tv chaos   [--seeds N]           # seeded fault sweeps over a golden workload
//! tv trace-check <trace.json>      # validate a Chrome trace written by --trace
//! ```
//!
//! Every subcommand additionally accepts the observability flags:
//! `--profile` prints a wall-clock span summary and the nonzero
//! deterministic counters to stderr; `--trace FILE` writes the span tree
//! as a Chrome trace-event file (load in `chrome://tracing` or
//! Perfetto); `--metrics FILE` writes the deterministic counter dump as
//! JSON — bit-identical across `--jobs` values, which `tv trace-check`
//! and the committed counter goldens enforce.
//!
//! `session` holds one design resident behind the pass pipeline: edits
//! (`edit resize|setcap|adddev|rmdev|retech ...`) bump its revision, and
//! each `analyze` re-runs only the passes whose inputs changed, replying
//! with the pass trace and the report's golden fingerprint. `batch` runs
//! the same loop over a script file, so a committed script plus its
//! transcript pin the protocol bit-for-bit (see `nmos_tv::session`).
//!
//! Malformed `.sim` input no longer stops at the first bad line: the
//! recovering parser reports *every* problem (`--max-errors` caps the
//! count, `--diag-format json` switches to machine-readable output) and
//! analyzes whatever parsed. `--jobs N` fans graph construction and
//! levelized propagation out over `N` threads (`0` = all cores) with
//! bit-identical results; `--incremental` reuses clean cones between the
//! run's analysis cases; `--relax-budget` / `--deadline` bound the work a
//! pathological netlist can consume, returning partial results.
//!
//! Exit status: `0` clean, `1` analysis failure (unreadable or
//! unrecoverable input, parse errors, exhausted resource guards), `2`
//! usage error, `3` timing/electrical violations — for `analyze` only
//! when `--check` asks for violation gating.

use std::process::ExitCode;
use std::time::Duration;

use nmos_tv::clocks::TwoPhaseClock;
use nmos_tv::core::{AnalysisOptions, Analyzer, DelayModel, TvError};
use nmos_tv::flow::{analyze as flow_analyze, RuleSet};
use nmos_tv::netlist::{sim_format, spice, Diagnostics, Netlist, Tech};

const EXIT_CLEAN: u8 = 0;
const EXIT_FAILURE: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_VIOLATIONS: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("tv: {e}");
            if matches!(e, TvError::Usage(_)) {
                eprintln!();
                eprintln!("{USAGE}");
                ExitCode::from(EXIT_USAGE)
            } else {
                ExitCode::from(EXIT_FAILURE)
            }
        }
    }
}

const USAGE: &str = "usage:
  tv analyze <file.sim> [--cycle NS] [--no-case] [--model lumped|elmore|upper]
                        [--top K] [--jobs N] [--incremental] [--check]
                        [--relax-budget N] [--deadline SECS]
                        [--max-nodes N] [--max-arcs N]
  tv check   <file.sim>
  tv flow    <file.sim>
  tv query   <file.sim> <from-node> <to-node>
  tv spice   <file.sim>
  tv gen     [--cores N] [--out FILE] generate a multi-core MIPS-class design
                                     (default: the smallest core count past
                                     one million devices; stdout without --out)
  tv demo    [--jobs N]
  tv session [engine flags]          commands on stdin, one JSON reply per line
             [--journal FILE]        append each accepted command to a crash-safe journal
             [--resume FILE]         replay a journal to its exact state, then continue
  tv batch   <script> [engine flags] replay a session script from a file
             [--resume FILE]         resume a journal before running the script
  tv serve   [--listen ADDR]         serve sessions over TCP (default 127.0.0.1:7683)
             [--unix PATH]           ... or over a unix socket instead
             [--max-sessions N]      global concurrent-session cap (default 64)
             [--max-tenant N]        per-tenant session cap (default 8)
             [--journal-dir DIR]     crash-safe per-tenant journals + resume
  tv client  [--connect ADDR | --unix PATH] [script]
             [--tenant NAME]         tenant identity (default \"cli\")
                                     replay a script (or stdin) against a server;
                                     the transcript matches `tv batch` exactly
  tv loadgen [--connect ADDR | --unix PATH] <script>
             [--clients N]           concurrent connections (default 8)
             [--repeat N]            script replays per client (default 1)
                                     prints one JSON object: throughput + p50/p95/p99
  tv fuzz    [--iters N] [--seed S] [--faults]
                                     --faults drives seeded fault plans through
                                     random session scripts
  tv chaos   [--seeds N] [--jobs N]  sweep N seeded fault plans over a golden
                                     workload, asserting the recovery contract
  tv trace-check <trace.json>        validate a Chrome trace written by --trace

diagnostics (all netlist-reading subcommands):
  --max-errors N        stop reporting parse errors after N (default 20)
  --diag-format FMT     text (default) or json

observability (all subcommands):
  --profile             span summary + nonzero counters to stderr
  --trace FILE          Chrome trace-event JSON (chrome://tracing, Perfetto)
  --metrics FILE        deterministic counter dump as JSON

exit status:
  0  clean
  1  analysis failure: unreadable/unrecoverable input, parse errors,
     exhausted resource guards (--relax-budget / --deadline), fuzz findings
  2  usage error (unknown subcommand or flag, missing argument)
  3  violations found (negative slack, races, electrical issues,
     unresolved pass directions); for `analyze` only with --check";

/// Everything the flag parser produces: engine options plus CLI-only
/// ingest and gating knobs.
struct Cli {
    options: AnalysisOptions,
    max_errors: usize,
    json: bool,
    check: bool,
    journal: Option<String>,
    resume: Option<String>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            options: AnalysisOptions::default(),
            max_errors: 20,
            json: false,
            check: false,
            journal: None,
            resume: None,
        }
    }
}

/// The observability surface: which planes to enable and where the
/// outputs go. Parsed twice — once by a pre-scan in `run` (the planes
/// must be live before any subcommand work starts) and once by each
/// subcommand's `parse_cli` (so the flags are accepted, not rejected as
/// unknown).
#[derive(Default, Clone)]
struct ObsFlags {
    profile: bool,
    trace: Option<String>,
    metrics: Option<String>,
}

impl ObsFlags {
    /// Pre-scan of the raw argument list, using the same
    /// value-consuming rules as `split_flags` so a flag value can never
    /// be misread as a flag. `--trace`/`--metrics` need a filename
    /// operand: a missing one, or a following token that is itself a
    /// flag (`tv analyze --trace --profile x.sim` would otherwise write
    /// a file literally named `--profile`), is a usage error.
    fn scan(args: &[String]) -> Result<ObsFlags, TvError> {
        let mut obs = ObsFlags::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--profile" => obs.profile = true,
                "--trace" => obs.trace = Some(file_operand(a, it.next())?),
                "--metrics" => obs.metrics = Some(file_operand(a, it.next())?),
                f if f.starts_with("--") && takes_value(f) => {
                    it.next();
                }
                _ => {}
            }
        }
        Ok(obs)
    }

    /// Turns on the planes the requested outputs need.
    fn activate(&self) {
        if self.profile || self.trace.is_some() {
            nmos_tv::obs::spans::set_enabled(true);
        }
        if self.profile || self.metrics.is_some() {
            nmos_tv::obs::counters::set_enabled(true);
        }
    }

    /// Writes the requested outputs after the subcommand ran. The
    /// profile summary goes to stderr so it composes with report output
    /// on stdout. Each file write crosses a fault site (`trace_write`,
    /// `metrics_write`); an injected — or genuinely transient — failure
    /// is retried once before it surfaces as the run's error.
    fn finish(&self) -> Result<(), TvError> {
        let write = |path: &String, text: String, site: nmos_tv::fault::Site| {
            let first = match nmos_tv::fault::io_error(site) {
                Some(e) => {
                    nmos_tv::obs::incr(nmos_tv::obs::Counter::FaultInjected);
                    Err(e)
                }
                None => std::fs::write(path, &text),
            };
            first
                .or_else(|_| {
                    nmos_tv::obs::incr(nmos_tv::obs::Counter::FaultRetries);
                    std::fs::write(path, &text)
                })
                .map_err(|e| TvError::Io {
                    path: path.clone(),
                    source: e,
                })
        };
        if self.profile || self.trace.is_some() {
            let events = nmos_tv::obs::spans::take_events();
            if let Some(path) = &self.trace {
                write(
                    path,
                    nmos_tv::obs::trace::render_chrome(&events),
                    nmos_tv::fault::Site::TraceWrite,
                )?;
            }
            if self.profile {
                eprint!("{}", nmos_tv::obs::spans::render_summary(&events));
            }
        }
        if self.profile || self.metrics.is_some() {
            let snap = nmos_tv::obs::counters::snapshot();
            if let Some(path) = &self.metrics {
                write(
                    path,
                    format!("{}\n", snap.render_json()),
                    nmos_tv::fault::Site::MetricsWrite,
                )?;
            }
            if self.profile {
                eprint!("{}", snap.render_table());
            }
        }
        Ok(())
    }
}

/// Activates the observability planes before dispatch and flushes their
/// outputs after, so `--profile`/`--trace`/`--metrics` compose with any
/// subcommand. Outputs are written even when the subcommand exits
/// nonzero (a failing run is exactly when a profile is wanted), but a
/// dispatch error suppresses them — nothing ran.
fn run(args: &[String]) -> Result<u8, TvError> {
    let obs = ObsFlags::scan(args)?;
    obs.activate();
    // `--fault-seed N` arms one seeded fault plan for this whole
    // invocation — the binary-level hook the fault-injection integration
    // tests drive (`tv chaos` sweeps seeds in-process instead).
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fault-seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| TvError::Usage("--fault-seed needs a value".into()))?;
                let seed: u64 = v
                    .parse()
                    .map_err(|_| TvError::Usage(format!("bad fault seed {v:?}")))?;
                nmos_tv::fault::arm(nmos_tv::fault::FaultPlan::from_seed(seed));
            }
            f if f.starts_with("--") && takes_value(f) => {
                it.next();
            }
            _ => {}
        }
    }
    let code = run_inner(args)?;
    obs.finish()?;
    Ok(code)
}

fn run_inner(args: &[String]) -> Result<u8, TvError> {
    let cmd = args
        .first()
        .ok_or_else(|| TvError::Usage("missing subcommand".into()))?;
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(EXIT_CLEAN)
        }
        "analyze" => {
            let cli = parse_cli(&args[2..])?;
            let (netlist, diags) = load(&args[1..], &cli)?;
            let dirty_parse = emit_diags(&diags, args.get(1), &cli);
            let report = Analyzer::new(&netlist).try_run(&cli.options)?;
            print!("{}", report.render(&netlist));
            let slack_ok = report
                .phases
                .iter()
                .all(|p| p.slack.is_none_or(|s| s >= 0.0));
            let race_free = report.phases.iter().all(|p| p.races.is_empty());
            let violations = !(report.checks.is_empty() && slack_ok && race_free);
            if dirty_parse || !report.is_complete() {
                Ok(EXIT_FAILURE)
            } else if cli.check && violations {
                Ok(EXIT_VIOLATIONS)
            } else {
                Ok(EXIT_CLEAN)
            }
        }
        "check" => {
            let cli = parse_cli(&args[2..])?;
            let (netlist, diags) = load(&args[1..], &cli)?;
            let dirty_parse = emit_diags(&diags, args.get(1), &cli);
            let report = Analyzer::new(&netlist).run(&cli.options);
            if report.checks.is_empty() {
                println!("electrical checks: clean");
            } else {
                for issue in &report.checks {
                    println!("{}", issue.display(&netlist));
                }
            }
            if dirty_parse {
                Ok(EXIT_FAILURE)
            } else if report.checks.is_empty() {
                Ok(EXIT_CLEAN)
            } else {
                Ok(EXIT_VIOLATIONS)
            }
        }
        "flow" => {
            let cli = parse_cli(&args[2..])?;
            let (netlist, diags) = load(&args[1..], &cli)?;
            let dirty_parse = emit_diags(&diags, args.get(1), &cli);
            let flow = flow_analyze(&netlist, &RuleSet::all());
            println!("{}", flow.report(&netlist));
            if dirty_parse {
                Ok(EXIT_FAILURE)
            } else if flow.unresolved(&netlist).count() == 0 {
                Ok(EXIT_CLEAN)
            } else {
                Ok(EXIT_VIOLATIONS)
            }
        }
        "query" => {
            let (flags, rest) = split_flags(&args[1..]);
            let cli = parse_cli(&flags)?;
            let [path, from_name, to_name] = rest.as_slice() else {
                return Err(TvError::Usage(
                    "query needs <file.sim> <from-node> <to-node>".into(),
                ));
            };
            let (netlist, diags) = load(std::slice::from_ref(path), &cli)?;
            let dirty_parse = emit_diags(&diags, Some(path), &cli);
            let from = netlist
                .node_by_name(from_name)
                .ok_or_else(|| TvError::UnknownNode(from_name.clone()))?;
            let to = netlist
                .node_by_name(to_name)
                .ok_or_else(|| TvError::UnknownNode(to_name.clone()))?;
            match Analyzer::new(&netlist).path_query(from, to, &cli.options) {
                Some(path) => {
                    println!(
                        "worst path {} -> {}: {:.3} ns, {} steps",
                        from_name,
                        to_name,
                        path.arrival(),
                        path.len()
                    );
                    print!("{}", path.display(&netlist));
                    Ok(if dirty_parse {
                        EXIT_FAILURE
                    } else {
                        EXIT_CLEAN
                    })
                }
                None => {
                    println!("{to_name} is not reachable from {from_name}");
                    Ok(EXIT_FAILURE)
                }
            }
        }
        "spice" => {
            let cli = parse_cli(&args[2..])?;
            let (netlist, diags) = load(&args[1..], &cli)?;
            let dirty_parse = emit_diags(&diags, args.get(1), &cli);
            print!("{}", spice::write(&netlist));
            Ok(if dirty_parse {
                EXIT_FAILURE
            } else {
                EXIT_CLEAN
            })
        }
        "gen" => {
            let (cores, out) = parse_gen(&args[1..])?;
            let mc = nmos_tv::gen::mips_mc::t6_mips_mc(Tech::nmos4um(), cores);
            let text = sim_format::write(&mc.netlist);
            match &out {
                Some(path) => std::fs::write(path, &text).map_err(|e| TvError::Io {
                    path: path.clone(),
                    source: e,
                })?,
                None => print!("{text}"),
            }
            // The summary goes to stderr so `tv gen > file.sim` stays a
            // clean netlist on stdout.
            eprintln!(
                "generated {cores}-core design: {} devices, {} nodes, {} bytes{}",
                mc.netlist.device_count(),
                mc.netlist.node_count(),
                text.len(),
                out.map(|p| format!(" -> {p}")).unwrap_or_default()
            );
            Ok(EXIT_CLEAN)
        }
        "demo" => {
            let cli = parse_cli(&args[1..])?;
            let dp = nmos_tv::gen::datapath::datapath(
                Tech::nmos4um(),
                nmos_tv::gen::datapath::DatapathConfig::mips32(),
            );
            let report = Analyzer::new(&dp.netlist).run(&cli.options);
            print!("{}", report.render(&dp.netlist));
            Ok(EXIT_CLEAN)
        }
        "session" => {
            let cli = parse_cli(&args[1..])?;
            if cli.journal.is_some() && cli.resume.is_some() {
                return Err(TvError::Usage(
                    "--journal and --resume are mutually exclusive (resume keeps \
                     appending to the journal it replays)"
                        .into(),
                ));
            }
            let stdin = std::io::stdin();
            let mut out = std::io::stdout();
            let code = nmos_tv::session::run_session_with(
                stdin.lock(),
                &mut out,
                cli.options,
                cli.max_errors,
                cli.journal.as_deref(),
                cli.resume.as_deref(),
            )
            .map_err(|e| TvError::Io {
                path: "<stdin>".into(),
                source: e,
            })?;
            Ok(code)
        }
        "batch" => {
            let (flags, rest) = split_flags(&args[1..]);
            let cli = parse_cli(&flags)?;
            let [script] = rest.as_slice() else {
                return Err(TvError::Usage("batch needs <script>".into()));
            };
            let text = std::fs::read_to_string(script).map_err(|e| TvError::Io {
                path: script.clone(),
                source: e,
            })?;
            let mut out = std::io::stdout();
            let code = nmos_tv::session::run_session_with(
                std::io::Cursor::new(text),
                &mut out,
                cli.options,
                cli.max_errors,
                cli.journal.as_deref(),
                cli.resume.as_deref(),
            )
            .map_err(|e| TvError::Io {
                path: script.clone(),
                source: e,
            })?;
            Ok(code)
        }
        "serve" => {
            let (listen, unix, config) = parse_serve(&args[1..])?;
            let handle = match (listen, unix) {
                (Some(_), Some(_)) => {
                    return Err(TvError::Usage(
                        "--listen and --unix are mutually exclusive".into(),
                    ))
                }
                #[cfg(unix)]
                (None, Some(path)) => nmos_tv::serve::server::serve_unix(&path, config),
                #[cfg(not(unix))]
                (None, Some(_)) => {
                    return Err(TvError::Usage(
                        "--unix is not available on this platform".into(),
                    ))
                }
                (listen, None) => nmos_tv::serve::server::serve_tcp(
                    listen.as_deref().unwrap_or("127.0.0.1:7683"),
                    config,
                ),
            }
            .map_err(|e| TvError::Io {
                path: "<listener>".into(),
                source: e,
            })?;
            // The banner goes to stderr so scripted callers parsing
            // stdout see nothing until they connect.
            eprintln!("tv serve: listening on {}", handle.endpoint());
            handle.wait();
            Ok(EXIT_CLEAN)
        }
        "client" => {
            let (flags, rest) = split_flags(&args[1..]);
            let (endpoint, tenant, limits) = parse_client(&flags)?;
            let mut stream = endpoint.connect().map_err(|e| TvError::Io {
                path: endpoint.to_string(),
                source: e,
            })?;
            let mut out = std::io::stdout();
            let result = match rest.as_slice() {
                [] => {
                    let stdin = std::io::stdin();
                    nmos_tv::serve::client::run_client(
                        &mut stream,
                        &tenant,
                        limits,
                        stdin.lock(),
                        &mut out,
                    )
                }
                [script] => {
                    let text = std::fs::read_to_string(script).map_err(|e| TvError::Io {
                        path: script.clone(),
                        source: e,
                    })?;
                    nmos_tv::serve::client::run_client(
                        &mut stream,
                        &tenant,
                        limits,
                        std::io::Cursor::new(text),
                        &mut out,
                    )
                }
                _ => return Err(TvError::Usage("client takes at most one <script>".into())),
            };
            match result {
                Ok(code) => Ok(code),
                Err(e) => {
                    eprintln!("tv client: {e}");
                    Ok(EXIT_FAILURE)
                }
            }
        }
        "loadgen" => {
            let (flags, rest) = split_flags(&args[1..]);
            let (endpoint, config) = parse_loadgen(&flags)?;
            let [script] = rest.as_slice() else {
                return Err(TvError::Usage("loadgen needs <script>".into()));
            };
            let text = std::fs::read_to_string(script).map_err(|e| TvError::Io {
                path: script.clone(),
                source: e,
            })?;
            let lines: Vec<String> = text.lines().map(str::to_string).collect();
            match nmos_tv::serve::loadgen::run_loadgen(&endpoint, &lines, &config) {
                Ok(report) => {
                    println!("{}", report.render_json());
                    Ok(EXIT_CLEAN)
                }
                Err(msg) => {
                    eprintln!("tv loadgen: {msg}");
                    Ok(EXIT_FAILURE)
                }
            }
        }
        "chaos" => {
            let (seeds, options) = parse_chaos(&args[1..])?;
            let report = nmos_tv::chaos::run_chaos(seeds, &options).map_err(|e| TvError::Io {
                path: "<chaos temp files>".into(),
                source: e,
            })?;
            println!("{report}");
            Ok(if report.is_clean() {
                EXIT_CLEAN
            } else {
                EXIT_FAILURE
            })
        }
        "trace-check" => {
            let (flags, rest) = split_flags(&args[1..]);
            parse_cli(&flags)?;
            let [path] = rest.as_slice() else {
                return Err(TvError::Usage("trace-check needs <trace.json>".into()));
            };
            let text = std::fs::read_to_string(path).map_err(|e| TvError::Io {
                path: path.clone(),
                source: e,
            })?;
            match nmos_tv::obs::trace::validate(&text) {
                Ok(n) => {
                    println!("trace ok: {n} event(s), spans nest");
                    Ok(EXIT_CLEAN)
                }
                Err(msg) => {
                    // A truncated or garbage trace is a coded diagnostic
                    // and exit 1, never a panic (TV0505).
                    let d = nmos_tv::netlist::Diagnostic::error(
                        nmos_tv::netlist::codes::OBS_BAD_TRACE,
                        format!("invalid trace: {msg}"),
                    );
                    eprintln!("{}", d.render_text(Some(path)));
                    Ok(EXIT_FAILURE)
                }
            }
        }
        "fuzz" => {
            let (iters, seed, faults) = parse_fuzz(&args[1..])?;
            if faults {
                let report = nmos_tv::fuzz::run_faults(iters.unwrap_or(60), seed).map_err(|e| {
                    TvError::Io {
                        path: "<fuzz session>".into(),
                        source: e,
                    }
                })?;
                println!("{report}");
                return Ok(if report.is_clean() {
                    EXIT_CLEAN
                } else {
                    EXIT_FAILURE
                });
            }
            let report = nmos_tv::fuzz::run(iters.unwrap_or(500), seed);
            println!("{report}");
            Ok(if report.is_clean() {
                EXIT_CLEAN
            } else {
                EXIT_FAILURE
            })
        }
        other => Err(TvError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

/// Loads the `.sim` file named by the first argument with the recovering
/// parser; returns the (possibly partial) netlist and the diagnostics the
/// parse accumulated.
fn load(args: &[String], cli: &Cli) -> Result<(Netlist, Diagnostics), TvError> {
    let path = args
        .first()
        .ok_or_else(|| TvError::Usage("missing <file.sim>".into()))?;
    let text = match nmos_tv::fault::io_error(nmos_tv::fault::Site::SimRead) {
        Some(e) => {
            nmos_tv::obs::incr(nmos_tv::obs::Counter::FaultInjected);
            Err(e)
        }
        None => std::fs::read_to_string(path),
    }
    .map_err(|e| TvError::Io {
        path: path.clone(),
        source: e,
    })?;
    let mut diags = Diagnostics::with_max_errors(cli.max_errors);
    let popts = sim_format::ParseOptions {
        jobs: cli.options.effective_jobs(),
        ..sim_format::ParseOptions::default()
    };
    let netlist = sim_format::parse_recovering_with(&text, Tech::nmos4um(), &mut diags, &popts)
        .map_err(|e| TvError::Parse {
            path: path.clone(),
            message: e.to_string(),
        })?;
    Ok((netlist, diags))
}

/// Prints accumulated diagnostics to stderr in the requested format.
/// Returns whether any were errors (the input was not clean).
fn emit_diags(diags: &Diagnostics, path: Option<&String>, cli: &Cli) -> bool {
    let path = path.map(|p| p.as_str());
    if !diags.is_empty() {
        if cli.json {
            eprintln!("{}", diags.render_json(path));
        } else {
            eprint!("{}", diags.render_text(path));
        }
    }
    diags.has_errors()
}

/// Splits `args` into (flags-with-values, positional operands) so
/// `query <file> <from> <to> --jobs 2` parses in any order.
fn split_flags(args: &[String]) -> (Vec<String>, Vec<String>) {
    let mut flags = Vec::new();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a.starts_with("--") {
            flags.push(a.clone());
            if takes_value(a) {
                if let Some(v) = it.next() {
                    flags.push(v.clone());
                }
            }
        } else {
            rest.push(a.clone());
        }
    }
    (flags, rest)
}

/// Validates the filename operand of an output flag (`--trace`,
/// `--metrics`): it must exist and must not look like another flag.
fn file_operand(flag: &str, v: Option<&String>) -> Result<String, TvError> {
    match v {
        None => Err(TvError::Usage(format!("{flag} needs a filename"))),
        Some(v) if v.starts_with("--") => Err(TvError::Usage(format!(
            "{flag} needs a filename, got flag {v:?}"
        ))),
        Some(v) => Ok(v.clone()),
    }
}

fn takes_value(flag: &str) -> bool {
    matches!(
        flag,
        "--cycle"
            | "--model"
            | "--top"
            | "--jobs"
            | "--max-errors"
            | "--diag-format"
            | "--relax-budget"
            | "--deadline"
            | "--max-nodes"
            | "--max-arcs"
            | "--iters"
            | "--seed"
            | "--seeds"
            | "--cores"
            | "--out"
            | "--trace"
            | "--metrics"
            | "--journal"
            | "--resume"
            | "--fault-seed"
            | "--listen"
            | "--unix"
            | "--connect"
            | "--max-sessions"
            | "--max-tenant"
            | "--journal-dir"
            | "--tenant"
            | "--clients"
            | "--repeat"
    )
}

/// The one shared option parser: walks a `--flag [value]` list with
/// uniform "needs a value" / "bad value" errors. Every subcommand's flag
/// set — the engine flags, the fuzzer's, and the session grammar on top
/// of them — goes through this walker instead of hand-rolling its own
/// `it.next()` boilerplate.
struct Flags<'a> {
    it: std::slice::Iter<'a, String>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags { it: args.iter() }
    }

    /// The next flag token, if any.
    fn next_flag(&mut self) -> Option<&'a str> {
        self.it.next().map(|s| s.as_str())
    }

    /// The value operand of `flag`, or a usage error naming it.
    fn value(&mut self, flag: &str) -> Result<&'a str, TvError> {
        self.it
            .next()
            .map(|s| s.as_str())
            .ok_or_else(|| TvError::Usage(format!("{flag} needs a value")))
    }

    /// The value operand of `flag`, parsed; a parse failure reports
    /// `bad <what> <value>`.
    fn parsed<T: std::str::FromStr>(&mut self, flag: &str, what: &str) -> Result<T, TvError> {
        let v = self.value(flag)?;
        v.parse()
            .map_err(|_| TvError::Usage(format!("bad {what} {v:?}")))
    }
}

fn parse_cli(args: &[String]) -> Result<Cli, TvError> {
    let mut cli = Cli::default();
    let mut fl = Flags::new(args);
    while let Some(flag) = fl.next_flag() {
        match flag {
            "--no-case" => cli.options.case_analysis = false,
            "--check" => cli.check = true,
            "--incremental" => cli.options.incremental = true,
            "--cycle" => {
                let cycle: f64 = fl.parsed(flag, "cycle")?;
                cli.options.clock = TwoPhaseClock::symmetric(cycle, cycle * 0.02);
            }
            "--model" => {
                cli.options.model = match fl.value(flag)? {
                    "lumped" => DelayModel::Lumped,
                    "elmore" => DelayModel::Elmore,
                    "upper" => DelayModel::UpperBound,
                    other => return Err(TvError::Usage(format!("unknown model {other:?}"))),
                };
            }
            "--top" => cli.options.top_k = fl.parsed(flag, "top-k")?,
            "--jobs" => cli.options.jobs = fl.parsed(flag, "job count")?,
            "--max-errors" => cli.max_errors = fl.parsed(flag, "error cap")?,
            "--diag-format" => {
                cli.json = match fl.value(flag)? {
                    "text" => false,
                    "json" => true,
                    other => return Err(TvError::Usage(format!("unknown diag format {other:?}"))),
                };
            }
            "--relax-budget" => {
                cli.options.relax_budget = Some(fl.parsed(flag, "relaxation budget")?)
            }
            "--deadline" => {
                let secs: f64 = fl.parsed(flag, "deadline")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(TvError::Usage(format!(
                        "deadline must be positive, got {secs:?}"
                    )));
                }
                cli.options.deadline = Some(Duration::from_secs_f64(secs));
            }
            "--max-nodes" => cli.options.max_nodes = Some(fl.parsed(flag, "node limit")?),
            "--max-arcs" => cli.options.max_arcs = Some(fl.parsed(flag, "arc limit")?),
            "--journal" => {
                let v = fl.value(flag)?.to_string();
                cli.journal = Some(file_operand(flag, Some(&v))?);
            }
            "--resume" => {
                let v = fl.value(flag)?.to_string();
                cli.resume = Some(file_operand(flag, Some(&v))?);
            }
            // The observability flags were already consumed by the
            // `ObsFlags::scan` pre-pass in `run`; accept them here so
            // subcommand parsers don't reject them as unknown, with the
            // same filename-operand validation as the pre-scan.
            "--profile" => {}
            "--trace" | "--metrics" => {
                let v = fl.value(flag)?.to_string();
                file_operand(flag, Some(&v))?;
            }
            // Consumed by the fault-plane pre-scan in `run`.
            "--fault-seed" => {
                fl.value(flag)?;
            }
            other => return Err(TvError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    Ok(cli)
}

/// Fuzz flags. `iters` stays `None` when unset so each mode picks its
/// own default (500 parse-fuzz iterations, 60 fault-fuzz iterations —
/// the latter runs two full sessions per iteration).
fn parse_fuzz(args: &[String]) -> Result<(Option<usize>, u64, bool), TvError> {
    let mut iters = None;
    let mut seed = 0x7001u64;
    let mut faults = false;
    let mut fl = Flags::new(args);
    while let Some(flag) = fl.next_flag() {
        match flag {
            "--iters" => iters = Some(fl.parsed(flag, "iteration count")?),
            "--seed" => seed = fl.parsed(flag, "seed")?,
            "--faults" => faults = true,
            "--profile" => {}
            "--trace" | "--metrics" => {
                let v = fl.value(flag)?.to_string();
                file_operand(flag, Some(&v))?;
            }
            other => return Err(TvError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    Ok((iters, seed, faults))
}

/// Gen flags: the multi-core tiling size and the output file. Defaults
/// to the smallest core count that crosses one million devices; with no
/// `--out` the netlist goes to stdout.
fn parse_gen(args: &[String]) -> Result<(usize, Option<String>), TvError> {
    let mut cores = nmos_tv::gen::mips_mc::MILLION_DEVICE_CORES;
    let mut out = None;
    let mut fl = Flags::new(args);
    while let Some(flag) = fl.next_flag() {
        match flag {
            "--cores" => {
                cores = fl.parsed(flag, "core count")?;
                if cores == 0 {
                    return Err(TvError::Usage("core count must be positive".into()));
                }
            }
            "--out" => {
                let v = fl.value(flag)?.to_string();
                out = Some(file_operand(flag, Some(&v))?);
            }
            "--profile" => {}
            "--trace" | "--metrics" => {
                let v = fl.value(flag)?.to_string();
                file_operand(flag, Some(&v))?;
            }
            other => return Err(TvError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    Ok((cores, out))
}

/// Serve flags: where to listen plus the admission caps, the journal
/// directory, and the engine ceilings hosted sessions start from.
#[allow(clippy::type_complexity)]
fn parse_serve(
    args: &[String],
) -> Result<(Option<String>, Option<String>, nmos_tv::serve::ServeConfig), TvError> {
    let mut listen = None;
    let mut unix = None;
    let mut config = nmos_tv::serve::ServeConfig::default();
    let mut fl = Flags::new(args);
    while let Some(flag) = fl.next_flag() {
        match flag {
            "--listen" => listen = Some(fl.value(flag)?.to_string()),
            "--unix" => unix = Some(fl.value(flag)?.to_string()),
            "--max-sessions" => {
                config.max_sessions = fl.parsed(flag, "session cap")?;
                if config.max_sessions == 0 {
                    return Err(TvError::Usage("session cap must be positive".into()));
                }
            }
            "--max-tenant" => {
                config.max_per_tenant = fl.parsed(flag, "tenant cap")?;
                if config.max_per_tenant == 0 {
                    return Err(TvError::Usage("tenant cap must be positive".into()));
                }
            }
            "--journal-dir" => {
                let v = fl.value(flag)?.to_string();
                config.journal_dir = Some(file_operand(flag, Some(&v))?);
            }
            "--jobs" => config.options.jobs = fl.parsed(flag, "job count")?,
            "--max-errors" => config.max_errors = fl.parsed(flag, "error cap")?,
            "--relax-budget" => {
                config.options.relax_budget = Some(fl.parsed(flag, "relaxation budget")?)
            }
            "--deadline" => {
                let secs: f64 = fl.parsed(flag, "deadline")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(TvError::Usage(format!(
                        "deadline must be positive, got {secs:?}"
                    )));
                }
                config.options.deadline = Some(Duration::from_secs_f64(secs));
            }
            "--max-nodes" => config.options.max_nodes = Some(fl.parsed(flag, "node limit")?),
            "--max-arcs" => config.options.max_arcs = Some(fl.parsed(flag, "arc limit")?),
            "--profile" => {}
            "--trace" | "--metrics" => {
                let v = fl.value(flag)?.to_string();
                file_operand(flag, Some(&v))?;
            }
            "--fault-seed" => {
                fl.value(flag)?;
            }
            other => return Err(TvError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    Ok((listen, unix, config))
}

/// Resolves the client-side `--connect ADDR` / `--unix PATH` pair into
/// an [`Endpoint`](nmos_tv::serve::server::Endpoint). Exactly one may be
/// given; neither means the default TCP address `tv serve` binds.
fn parse_endpoint(
    connect: Option<String>,
    unix: Option<String>,
) -> Result<nmos_tv::serve::server::Endpoint, TvError> {
    use std::net::ToSocketAddrs;
    match (connect, unix) {
        (Some(_), Some(_)) => Err(TvError::Usage(
            "--connect and --unix are mutually exclusive".into(),
        )),
        #[cfg(unix)]
        (None, Some(path)) => Ok(nmos_tv::serve::server::Endpoint::Unix(path.into())),
        #[cfg(not(unix))]
        (None, Some(_)) => Err(TvError::Usage(
            "--unix is not available on this platform".into(),
        )),
        (connect, None) => {
            let spec = connect.unwrap_or_else(|| "127.0.0.1:7683".into());
            let addr = spec
                .to_socket_addrs()
                .map_err(|_| TvError::Usage(format!("cannot resolve address {spec:?}")))?
                .next()
                .ok_or_else(|| TvError::Usage(format!("cannot resolve address {spec:?}")))?;
            Ok(nmos_tv::serve::server::Endpoint::Tcp(addr))
        }
    }
}

/// Client flags: the endpoint, the tenant identity, and the resource
/// asks (`--relax-budget`, `--deadline`, `--max-nodes`) forwarded in
/// `hello` — the server clamps them against its own ceilings.
fn parse_client(
    args: &[String],
) -> Result<
    (
        nmos_tv::serve::server::Endpoint,
        String,
        nmos_tv::proto::Limits,
    ),
    TvError,
> {
    let mut connect = None;
    let mut unix = None;
    let mut tenant = "cli".to_string();
    let mut limits = nmos_tv::proto::Limits::default();
    let mut fl = Flags::new(args);
    while let Some(flag) = fl.next_flag() {
        match flag {
            "--connect" => connect = Some(fl.value(flag)?.to_string()),
            "--unix" => unix = Some(fl.value(flag)?.to_string()),
            "--tenant" => tenant = fl.value(flag)?.to_string(),
            "--relax-budget" => limits.relax_budget = Some(fl.parsed(flag, "relaxation budget")?),
            "--deadline" => {
                let secs: f64 = fl.parsed(flag, "deadline")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(TvError::Usage(format!(
                        "deadline must be positive, got {secs:?}"
                    )));
                }
                limits.deadline_ms = Some((secs * 1000.0).ceil() as u64);
            }
            "--max-nodes" => limits.max_nodes = Some(fl.parsed(flag, "node limit")?),
            "--profile" => {}
            "--trace" | "--metrics" => {
                let v = fl.value(flag)?.to_string();
                file_operand(flag, Some(&v))?;
            }
            "--fault-seed" => {
                fl.value(flag)?;
            }
            other => return Err(TvError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    Ok((parse_endpoint(connect, unix)?, tenant, limits))
}

/// Loadgen flags: the endpoint plus the run shape (`--clients`,
/// `--repeat`).
fn parse_loadgen(
    args: &[String],
) -> Result<
    (
        nmos_tv::serve::server::Endpoint,
        nmos_tv::serve::loadgen::LoadgenConfig,
    ),
    TvError,
> {
    let mut connect = None;
    let mut unix = None;
    let mut config = nmos_tv::serve::loadgen::LoadgenConfig::default();
    let mut fl = Flags::new(args);
    while let Some(flag) = fl.next_flag() {
        match flag {
            "--connect" => connect = Some(fl.value(flag)?.to_string()),
            "--unix" => unix = Some(fl.value(flag)?.to_string()),
            "--clients" => {
                config.clients = fl.parsed(flag, "client count")?;
                if config.clients == 0 {
                    return Err(TvError::Usage("client count must be positive".into()));
                }
            }
            "--repeat" => {
                config.repeat = fl.parsed(flag, "repeat count")?;
                if config.repeat == 0 {
                    return Err(TvError::Usage("repeat count must be positive".into()));
                }
            }
            "--profile" => {}
            "--trace" | "--metrics" => {
                let v = fl.value(flag)?.to_string();
                file_operand(flag, Some(&v))?;
            }
            "--fault-seed" => {
                fl.value(flag)?;
            }
            other => return Err(TvError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    Ok((parse_endpoint(connect, unix)?, config))
}

/// Chaos flags: the sweep size and the engine's worker count (the one
/// engine knob that changes which recovery paths a sweep crosses).
fn parse_chaos(args: &[String]) -> Result<(u64, AnalysisOptions), TvError> {
    let mut seeds = 64u64;
    let mut options = AnalysisOptions::default();
    let mut fl = Flags::new(args);
    while let Some(flag) = fl.next_flag() {
        match flag {
            "--seeds" => seeds = fl.parsed(flag, "seed count")?,
            "--jobs" => options.jobs = fl.parsed(flag, "job count")?,
            "--profile" => {}
            "--trace" | "--metrics" => {
                let v = fl.value(flag)?.to_string();
                file_operand(flag, Some(&v))?;
            }
            other => return Err(TvError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    Ok((seeds, options))
}
