//! The `tv chaos` harness: seeded fault sweeps over a golden workload.
//!
//! Recovery code that only runs when hardware misbehaves is recovery
//! code that has never run. `tv chaos --seeds N` arms [`tv_fault`] with
//! each of `N` seeded [`FaultPlan`]s in turn, replays a fixed session
//! workload under every plan, and holds the process to the recovery
//! contract:
//!
//! * **No panic escapes.** Worker panics degrade; everything else is
//!   contained by the session supervisor. A panic that unwinds past the
//!   session loop is a violation.
//! * **No silent divergence.** Every reply either carries the exact
//!   fault-free result bits (revision, fingerprint, counts — the pass
//!   *trace* may honestly differ, and a `"recovered"` annotation may be
//!   attached) or fails loudly with `"ok":false` and a non-zero session
//!   exit code. PARTIAL RESULTS never masquerade as clean.
//! * **Resume restores bits.** For every seed the baseline journal is
//!   cut after a seed-dependent prefix (odd seeds also get a torn
//!   garbage tail), resumed, and fed the rest of the workload; every
//!   subsequent reply must be byte-identical to the uninterrupted run.
//! * **The serving plane holds too.** Every seed is additionally swept
//!   against a 2-client workload served by an in-process `tv serve`
//!   (the clients run sequentially so fault attribution stays
//!   deterministic); the `accept`/`frame_read`/`frame_write` sites
//!   must be absorbed by the platform's bounded retries, and the
//!   engine sites must classify exactly as they do in-process.
//!
//! The summary is deterministic — per-site outcome tallies, no paths,
//! no times — so `tests/data/chaos_smoke.golden` pins it in CI.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Cursor;
use std::panic::{catch_unwind, AssertUnwindSafe};

use tv_core::AnalysisOptions;
use tv_fault::FaultPlan;
use tv_gen::datapath::{datapath, DatapathConfig};
use tv_netlist::{sim_format, Tech};

use crate::session::{reply_fingerprint, run_session_with};

/// How one armed seed's run related to the fault-free baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The plan's site was never crossed often enough to fire.
    NotTriggered,
    /// The fault fired and every reply is byte-identical anyway (the
    /// hosting subsystem absorbed it below the protocol surface).
    Absorbed,
    /// The fault fired; result bits match the baseline but the work
    /// trace differs (a retry, a cold recompute, or a `"recovered"`
    /// annotation documents the repair).
    Recovered,
    /// The fault fired and a command failed with `"ok":false` and a
    /// non-zero session exit code — loud, documented failure.
    Loud,
    /// The contract broke; the string says how.
    Violation(String),
}

/// Per-site outcome tallies for the summary table.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiteTally {
    /// Plans that never reached their trigger count.
    pub not_triggered: u64,
    /// Byte-identical runs.
    pub absorbed: u64,
    /// Bit-identical results via a documented repair.
    pub recovered: u64,
    /// Loud, honest failures.
    pub loud: u64,
}

/// The deterministic result of one chaos sweep.
#[derive(Debug)]
pub struct ChaosReport {
    /// Seeds swept.
    pub seeds: u64,
    /// Commands in the workload (excluding `quit`).
    pub commands: usize,
    /// Outcomes per fault site, keyed by [`tv_fault::Site::name`].
    pub by_site: BTreeMap<&'static str, SiteTally>,
    /// Crash/resume checks executed (one per seed).
    pub resume_checked: u64,
    /// Resume checks that also exercised a torn journal tail.
    pub resume_torn: u64,
    /// Commands in the served workload (per client, excluding `quit`).
    pub serve_commands: usize,
    /// Served 2-client sweeps executed (one per seed).
    pub serve_checked: u64,
    /// Outcomes of the served sweeps per fault site.
    pub serve_by_site: BTreeMap<&'static str, SiteTally>,
    /// Contract violations; an empty list is a passing sweep.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Whether the sweep upheld the whole recovery contract.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos: seeds={} commands={} resume_checked={} resume_torn={}",
            self.seeds, self.commands, self.resume_checked, self.resume_torn
        )?;
        for (site, t) in &self.by_site {
            writeln!(
                f,
                "site {site}: absorbed={} recovered={} loud={} not_triggered={}",
                t.absorbed, t.recovered, t.loud, t.not_triggered
            )?;
        }
        writeln!(
            f,
            "serve: clients=2 commands={} checked={}",
            self.serve_commands, self.serve_checked
        )?;
        for (site, t) in &self.serve_by_site {
            writeln!(
                f,
                "serve site {site}: absorbed={} recovered={} loud={} not_triggered={}",
                t.absorbed, t.recovered, t.loud, t.not_triggered
            )?;
        }
        if self.is_clean() {
            write!(f, "chaos: no panics, no silent divergence")
        } else {
            for v in &self.violations {
                writeln!(f, "chaos: VIOLATION {v}")?;
            }
            write!(f, "chaos: {} violation(s)", self.violations.len())
        }
    }
}

/// The fixed golden workload: a session over the small demo datapath
/// exercising load, warm and cold analyzes, edits of both classes,
/// flow, and revision queries. `metrics` is deliberately absent (its
/// counters legitimately differ under injection) and `sim_path` is a
/// `.sim` rendering of the same demo, long enough (312 devices) to
/// cross the parser's 64-line fault chunks.
pub fn workload(sim_path: &str) -> Vec<String> {
    vec![
        "demo small".into(),
        "analyze".into(),
        "edit resize pu_wq0 6 2".into(),
        "analyze".into(),
        "edit setcap out0 0.08".into(),
        "analyze".into(),
        "flow".into(),
        "revision".into(),
        format!("load {sim_path}"),
        "analyze".into(),
        // `.sim` files carry no device names; the parser assigns m0...
        "edit resize m0 6 2".into(),
        "analyze".into(),
    ]
}

/// The served workload each of the two chaos clients replays: demo,
/// warm/cold analyzes, a parametric edit, and queries — enough traffic
/// to cross every frame boundary several times per connection.
pub fn serve_workload() -> Vec<String> {
    vec![
        "demo small".into(),
        "analyze".into(),
        "edit resize pu_wq0 6 2".into(),
        "analyze".into(),
        "flow".into(),
        "revision".into(),
    ]
}

/// Starts an in-process server, runs the 2 chaos clients *sequentially*
/// against it (concurrent clients would make which one absorbs a fault
/// schedule-dependent, and the summary is a golden), and returns their
/// concatenated transcripts plus the worst client exit code.
fn run_serve_pair(script: &[String]) -> Result<(Vec<String>, u8), String> {
    let handle = tv_serve::server::serve_tcp("127.0.0.1:0", tv_serve::ServeConfig::default())
        .map_err(|e| format!("cannot bind loopback server: {e}"))?;
    let mut replies = Vec::new();
    let mut code = 0u8;
    for tenant in ["chaos-a", "chaos-b"] {
        let mut stream = handle
            .endpoint()
            .connect()
            .map_err(|e| format!("cannot connect: {e}"))?;
        let mut input = script.join("\n");
        input.push_str("\nquit\n");
        let mut out = Vec::new();
        let c = tv_serve::client::run_client(
            &mut stream,
            tenant,
            tv_proto::Limits::default(),
            Cursor::new(input),
            &mut out,
        )
        .map_err(|e| format!("client {tenant}: {e}"))?;
        code = code.max(c);
        let text = String::from_utf8(out).map_err(|_| "non-UTF-8 transcript".to_string())?;
        replies.extend(text.lines().map(str::to_string));
    }
    handle.stop();
    Ok((replies, code))
}

/// Runs `commands` (plus a trailing `quit`) through one session and
/// returns its reply lines and exit code.
pub(crate) fn run_script(
    commands: &[String],
    options: &AnalysisOptions,
    journal: Option<&str>,
    resume: Option<&str>,
) -> std::io::Result<(Vec<String>, u8)> {
    let mut input = commands.join("\n");
    input.push_str("\nquit\n");
    let mut out = Vec::new();
    let code = run_session_with(
        Cursor::new(input),
        &mut out,
        options.clone(),
        64,
        journal,
        resume,
    )?;
    let text = String::from_utf8(out).expect("session replies are UTF-8");
    Ok((text.lines().map(str::to_string).collect(), code))
}

/// Strips the fields that may honestly differ on a recovered run — the
/// `"recovered"` annotation and the pass trace — leaving exactly the
/// result bits (revision, fingerprint, counts, values) for comparison.
/// Both fields are tail fields of the replies that carry them, so
/// truncation is exact.
fn result_bits(reply: &str) -> String {
    let mut r = reply.to_string();
    for tail in [r#","recovered":{"#, r#","passes":["#] {
        if let Some(pos) = r.find(tail) {
            r.truncate(pos);
            r.push('}');
        }
    }
    r
}

/// Compares one armed run against the fault-free baseline and names the
/// outcome per the recovery contract.
pub(crate) fn classify(
    baseline: &[String],
    base_code: u8,
    got: &[String],
    got_code: u8,
    fired: bool,
) -> Outcome {
    let mut repaired = false;
    let mut loud = false;
    for (i, want) in baseline.iter().enumerate() {
        let Some(g) = got.get(i) else {
            return Outcome::Violation(format!("session ended early at reply {i}"));
        };
        if g == want {
            continue;
        }
        if result_bits(g) == result_bits(want) {
            repaired = true;
            continue;
        }
        if g.contains(r#""ok":false"#) {
            // After the first loud failure the session's state honestly
            // diverges from the baseline; later replies are not
            // comparable. The exit code still must say "failed".
            loud = true;
            break;
        }
        return Outcome::Violation(format!(
            "silent divergence at reply {i}: got {g}, want {want}"
        ));
    }
    if loud {
        if got_code == 0 {
            return Outcome::Violation("loud failure but session exit code is 0".into());
        }
        return Outcome::Loud;
    }
    if got.len() != baseline.len() {
        return Outcome::Violation(format!(
            "reply count diverged: got {}, want {}",
            got.len(),
            baseline.len()
        ));
    }
    if got_code != base_code {
        return Outcome::Violation(format!(
            "exit code diverged: got {got_code}, want {base_code}"
        ));
    }
    if !fired {
        if repaired {
            return Outcome::Violation("replies diverged but no fault fired".into());
        }
        return Outcome::NotTriggered;
    }
    if repaired {
        Outcome::Recovered
    } else {
        Outcome::Absorbed
    }
}

/// Runs `f` with panic output suppressed: injected worker panics are
/// *expected* here, and their default-hook backtraces would bury the
/// summary (and make CI logs useless).
pub(crate) fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    drop(std::panic::take_hook());
    std::panic::set_hook(prev);
    result
}

/// Sweeps `seeds` fault plans (and `seeds` crash/resume cuts) over the
/// golden workload. Temp files live under the system temp dir and are
/// removed on the way out; nothing about them reaches the report.
pub fn run_chaos(seeds: u64, options: &AnalysisOptions) -> std::io::Result<ChaosReport> {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let path_of = |stem: &str| {
        dir.join(format!("tv-chaos-{pid}-{stem}"))
            .to_str()
            .expect("temp paths are UTF-8")
            .to_string()
    };
    let sim_path = path_of("demo.sim");
    let base_journal = path_of("base.journal");
    let run_journal = path_of("run.journal");
    let resume_journal = path_of("resume.journal");

    let demo = datapath(Tech::nmos4um(), DatapathConfig::small());
    std::fs::write(&sim_path, sim_format::write(&demo.netlist))?;
    let script = workload(&sim_path);
    let serve_script = serve_workload();

    let mut report = ChaosReport {
        seeds,
        commands: script.len(),
        by_site: tv_fault::SITES
            .iter()
            .map(|s| (s.name(), SiteTally::default()))
            .collect(),
        resume_checked: 0,
        resume_torn: 0,
        serve_commands: serve_script.len(),
        serve_checked: 0,
        serve_by_site: tv_fault::SITES
            .iter()
            .map(|s| (s.name(), SiteTally::default()))
            .collect(),
        violations: Vec::new(),
    };

    tv_fault::disarm();
    let (baseline, base_code) = run_script(&script, options, Some(&base_journal), None)?;
    if base_code != 0 {
        report.violations.push(format!(
            "fault-free baseline failed with exit code {base_code}"
        ));
        return Ok(report);
    }
    let base_journal_text = std::fs::read_to_string(&base_journal)?;

    with_quiet_panics(|| -> std::io::Result<()> {
        // Phase 1: one armed run per seed.
        for seed in 0..seeds {
            let plan = FaultPlan::from_seed(seed);
            let site = plan.site.name();
            tv_fault::arm(plan);
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                run_script(&script, options, Some(&run_journal), None)
            }));
            let fired = tv_fault::fired();
            tv_fault::disarm();
            let outcome = match attempt {
                Err(_) => Outcome::Violation("panic escaped the session loop".into()),
                Ok(Err(e)) => Outcome::Violation(format!("session loop I/O error: {e}")),
                Ok(Ok((replies, code))) => classify(&baseline, base_code, &replies, code, fired),
            };
            let tally = report.by_site.get_mut(site).expect("all sites tallied");
            match outcome {
                Outcome::NotTriggered => tally.not_triggered += 1,
                Outcome::Absorbed => tally.absorbed += 1,
                Outcome::Recovered => tally.recovered += 1,
                Outcome::Loud => tally.loud += 1,
                Outcome::Violation(v) => report
                    .violations
                    .push(format!("seed {seed} site {site}: {v}")),
            }
        }

        // Phase 2: crash/resume. The baseline journal has one entry per
        // workload command (all succeeded); cut it after a seed-chosen
        // prefix, resume, feed the rest, and demand byte-identical
        // replies from there on.
        let journal_lines: Vec<&str> = base_journal_text.lines().collect();
        let entries = journal_lines.len().saturating_sub(1);
        if entries != script.len() {
            report.violations.push(format!(
                "baseline journal has {entries} entries for {} commands",
                script.len()
            ));
            return Ok(());
        }
        for seed in 0..seeds {
            let k = (seed as usize) % (entries + 1);
            let mut prefix = journal_lines[..=k].join("\n");
            prefix.push('\n');
            let torn = seed % 2 == 1;
            if torn {
                // A crash mid-append: garbage with no trailing newline.
                prefix.push_str("deadbeef torn tail");
            }
            std::fs::write(&resume_journal, &prefix)?;
            let rest: Vec<String> = script[k..].to_vec();
            let (replies, code) = run_script(&rest, options, None, Some(&resume_journal))?;
            report.resume_checked += 1;
            if torn {
                report.resume_torn += 1;
            }
            // replies[0] is the resume summary; everything after must
            // match the uninterrupted run from command k on (including
            // the final analyze fingerprint and the quit reply).
            let resumed_ok = replies
                .first()
                .is_some_and(|r| r.contains(r#""ok":true,"cmd":"resume""#));
            let tail_matches = replies.get(1..).is_some_and(|tail| tail == &baseline[k..]);
            if code != 0 || !resumed_ok || !tail_matches {
                let fp = replies.iter().rev().find_map(|r| reply_fingerprint(r));
                report.violations.push(format!(
                    "resume seed {seed} cut {k} torn {torn}: exit {code}, final fingerprint {fp:?}"
                ));
            }
        }

        // Phase 3: the serving plane. The same seeds sweep a 2-client
        // served workload, so the accept/frame_read/frame_write sites
        // (and the engine sites, now behind a socket) face the same
        // contract: absorbed, recovered, or loud — never silent.
        tv_fault::disarm();
        let (serve_base, serve_base_code) = match run_serve_pair(&serve_script) {
            Ok(r) => r,
            Err(e) => {
                report
                    .violations
                    .push(format!("fault-free serve baseline failed: {e}"));
                return Ok(());
            }
        };
        if serve_base_code != 0 {
            report.violations.push(format!(
                "fault-free serve baseline failed with exit code {serve_base_code}"
            ));
            return Ok(());
        }
        for seed in 0..seeds {
            let plan = FaultPlan::from_seed(seed);
            let site = plan.site.name();
            tv_fault::arm(plan);
            let attempt = catch_unwind(AssertUnwindSafe(|| run_serve_pair(&serve_script)));
            let fired = tv_fault::fired();
            tv_fault::disarm();
            let outcome = match attempt {
                Err(_) => Outcome::Violation("panic escaped the serving plane".into()),
                Ok(Err(e)) => Outcome::Violation(format!("serve client error: {e}")),
                Ok(Ok((replies, code))) => {
                    classify(&serve_base, serve_base_code, &replies, code, fired)
                }
            };
            report.serve_checked += 1;
            let tally = report
                .serve_by_site
                .get_mut(site)
                .expect("all sites tallied");
            match outcome {
                Outcome::NotTriggered => tally.not_triggered += 1,
                Outcome::Absorbed => tally.absorbed += 1,
                Outcome::Recovered => tally.recovered += 1,
                Outcome::Loud => tally.loud += 1,
                Outcome::Violation(v) => report
                    .violations
                    .push(format!("serve seed {seed} site {site}: {v}")),
            }
        }
        Ok(())
    })?;

    for p in [&sim_path, &base_journal, &run_journal, &resume_journal] {
        let _ = std::fs::remove_file(p);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_bits_strips_trace_and_annotation() {
        let clean = r#"{"ok":true,"cmd":"analyze","revision":2,"fingerprint":"0xabc","passes":[{"pass":"graph","outcome":"computed"}]}"#;
        let warm = r#"{"ok":true,"cmd":"analyze","revision":2,"fingerprint":"0xabc","passes":[{"pass":"graph","outcome":"cone","recomputed":7}],"recovered":{"kind":"deadline","retries":1}}"#;
        assert_eq!(result_bits(clean), result_bits(warm));
        let other = r#"{"ok":true,"cmd":"analyze","revision":2,"fingerprint":"0xdef","passes":[]}"#;
        assert_ne!(result_bits(clean), result_bits(other));
    }

    #[test]
    fn classify_names_the_contract_outcomes() {
        let base = vec![
            r#"{"ok":true,"cmd":"revision","revision":1}"#.to_string(),
            r#"{"ok":true,"cmd":"quit"}"#.to_string(),
        ];
        assert_eq!(classify(&base, 0, &base, 0, false), Outcome::NotTriggered);
        assert_eq!(classify(&base, 0, &base, 0, true), Outcome::Absorbed);
        let loud = vec![
            r#"{"ok":false,"error":"injected"}"#.to_string(),
            r#"{"ok":true,"cmd":"quit"}"#.to_string(),
        ];
        assert_eq!(classify(&base, 0, &loud, 1, true), Outcome::Loud);
        assert!(matches!(
            classify(&base, 0, &loud, 0, true),
            Outcome::Violation(_)
        ));
        let silent = vec![
            r#"{"ok":true,"cmd":"revision","revision":9}"#.to_string(),
            r#"{"ok":true,"cmd":"quit"}"#.to_string(),
        ];
        assert!(matches!(
            classify(&base, 0, &silent, 0, true),
            Outcome::Violation(_)
        ));
    }

    #[test]
    fn classify_treats_typed_session_codes_as_loud_not_fatal() {
        // An unknown command (or an abandoned panicking one) is a typed
        // `ok:false` reply — TV0601/TV0603 — and the session keeps
        // serving; the classifier must read that as a loud, honest
        // failure, never a violation, as long as the exit code agrees.
        let base = vec![
            r#"{"ok":true,"cmd":"revision","revision":1}"#.to_string(),
            r#"{"ok":true,"cmd":"quit"}"#.to_string(),
        ];
        for code in ["TV0601", "TV0602", "TV0603"] {
            let loud = vec![
                format!(r#"{{"ok":false,"code":"{code}","error":"unknown command \"warp\""}}"#),
                r#"{"ok":true,"cmd":"quit"}"#.to_string(),
            ];
            assert_eq!(
                classify(&base, 0, &loud, 1, true),
                Outcome::Loud,
                "{code} must classify loud"
            );
        }
    }

    // Sweeps that actually arm the (process-global) fault plane live in
    // `tests/integration_chaos.rs`, a process of their own, so they can
    // never inject into an unrelated concurrently-running unit test.
}
