//! `nmos-tv`: transistor-level static timing analysis for nMOS VLSI.
//!
//! A from-scratch reproduction of the system described in N. Jouppi,
//! *"Timing analysis for nMOS VLSI"*, Proc. 20th Design Automation
//! Conference, 1983 — the *TV* timing verifier used on the Stanford MIPS
//! processor — together with every substrate its evaluation needed: a
//! transistor netlist model, signal-flow analysis, RC delay models, a
//! two-phase clock analyzer, a transient circuit simulator (the SPICE
//! stand-in), and generators for MIPS-class benchmark circuits.
//!
//! This crate re-exports the workspace's sub-crates under one roof:
//!
//! | module | crate | what it is |
//! |---|---|---|
//! | [`netlist`] | `tv-netlist` | nodes, transistors, technology, `.sim` I/O |
//! | [`flow`] | `tv-flow` | stages, classification, pass direction rules |
//! | [`rc`] | `tv-rc` | Elmore delay, bounds, pass-chain closed forms |
//! | [`clocks`] | `tv-clocks` | two-phase schemes, qualified clocks, latches |
//! | [`core`] | `tv-core` | the analyzer: arcs, arrivals, paths, checks |
//! | [`sim`] | `tv-sim` | level-1 MOS transient simulation |
//! | [`gen`] | `tv-gen` | benchmark circuit generators |
//! | [`obs`] | `tv-obs` | deterministic counters, spans, trace profiler |
//! | [`fault`] | `tv-fault` | seeded fault-injection plane for chaos testing |
//! | [`proto`] | `tv-proto` | versioned, framed wire protocol for serving |
//! | [`serve`] | `tv-serve` | sessions, journal, multi-tenant server, client, loadgen |
//!
//! # Quickstart
//!
//! ```
//! use nmos_tv::netlist::{NetlistBuilder, Tech};
//! use nmos_tv::core::{Analyzer, AnalysisOptions};
//!
//! # fn main() -> Result<(), nmos_tv::netlist::NetlistError> {
//! // Build a tiny circuit: two inverters and a pass-gated latch.
//! let mut b = NetlistBuilder::new(Tech::nmos4um());
//! let a = b.input("a");
//! let phi1 = b.clock("phi1", 0);
//! let x = b.node("x");
//! b.inverter("i1", a, x);
//! let qb = b.output("qb");
//! b.dynamic_latch("lat", phi1, x, qb);
//! let netlist = b.finish()?;
//!
//! // Analyze it.
//! let report = Analyzer::new(&netlist).run(&AnalysisOptions::default());
//! println!("{}", report.render(&netlist));
//! assert_eq!(report.latches.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod chaos;
pub mod fuzz;

pub use tv_clocks as clocks;
pub use tv_core as core;
pub use tv_fault as fault;
pub use tv_flow as flow;
pub use tv_gen as gen;
pub use tv_netlist as netlist;
pub use tv_obs as obs;
pub use tv_proto as proto;
pub use tv_rc as rc;
pub use tv_serve as serve;
pub use tv_serve::{journal, session};
pub use tv_sim as sim;
