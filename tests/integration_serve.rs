//! Serving-plane integration suite: the wire protocol's promises,
//! end to end over real sockets.
//!
//! Four guarantees from the PR 10 design are pinned here:
//!
//! 1. **Version negotiation** — a client speaking the wrong protocol
//!    version is refused with the typed `TV0701` error frame, never a
//!    hang or a silent close.
//! 2. **Serving bit-identity** — eight concurrent clients replaying the
//!    committed smoke script each receive a transcript byte-identical
//!    to what `tv batch` prints locally, at `--jobs 1`, `2`, and `8`.
//!    Concurrency, framing, and scheduling must not leak into replies.
//! 3. **Admission control** — a full server answers with the typed
//!    `TV0702` busy frame and counts `serve.rejected`; capacity frees
//!    on disconnect.
//! 4. **Durability** — with `--journal-dir`, a tenant whose connection
//!    dies mid-session reconnects, `hello_ok` reports the replayed
//!    entry count, and the resumed session analyzes to the same
//!    fingerprint the lost connection had.

use std::io::Read as _;
use std::process::Command;

use nmos_tv::proto::{self, codes, Frame, Limits};
use nmos_tv::serve::client;
use nmos_tv::serve::server::{serve_tcp, Endpoint, ServeConfig, ServerHandle};

/// The committed smoke script both `tv batch` and the served clients
/// replay.
const SMOKE: &str = "tests/data/session_smoke.txt";

fn start(config: ServeConfig) -> ServerHandle {
    serve_tcp("127.0.0.1:0", config).expect("bind loopback server")
}

fn connect(endpoint: &Endpoint) -> nmos_tv::serve::server::Stream {
    endpoint.connect().expect("connect to test server")
}

/// What the installed `tv batch` binary prints for `script` — the
/// local ground truth the served transcripts must match byte for byte.
fn batch_transcript(script: &str, jobs: usize) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_tv"))
        .args(["batch", script, "--jobs", &jobs.to_string()])
        .output()
        .expect("run tv batch");
    (
        String::from_utf8(out.stdout).expect("batch output is UTF-8"),
        out.status.success(),
    )
}

#[test]
fn wrong_protocol_version_is_refused_with_typed_code() {
    let handle = start(ServeConfig::default());
    let mut s = connect(handle.endpoint());
    proto::write_frame(
        &mut s,
        &Frame::Hello {
            proto: proto::VERSION + 1,
            tenant: "future".into(),
            client: "test".into(),
            limits: Limits::default(),
        },
    )
    .expect("send hello");
    match proto::read_frame(&mut s).expect("read refusal") {
        Some(Frame::Error { code, message }) => {
            assert_eq!(code, codes::VERSION_MISMATCH, "refusal: {message}");
            assert!(
                message.contains(&proto::VERSION.to_string()),
                "the refusal must name the server's version: {message}"
            );
        }
        other => panic!("expected a typed version refusal, got {other:?}"),
    }
    // The refusal closes the connection.
    let mut rest = Vec::new();
    let _ = s.read_to_end(&mut rest);
    assert!(rest.is_empty(), "nothing follows a refusal");
    handle.stop();
}

#[test]
fn first_frame_must_be_hello() {
    let handle = start(ServeConfig::default());
    let mut s = connect(handle.endpoint());
    proto::write_frame(
        &mut s,
        &Frame::Request {
            id: 1,
            line: "revision".into(),
        },
    )
    .expect("send early request");
    match proto::read_frame(&mut s).expect("read refusal") {
        Some(Frame::Error { code, .. }) => assert_eq!(code, codes::HELLO_REQUIRED),
        other => panic!("expected hello_required, got {other:?}"),
    }
    handle.stop();
}

#[test]
fn unknown_command_gets_a_typed_session_error() {
    let handle = start(ServeConfig::default());
    let mut s = connect(handle.endpoint());
    client::handshake(&mut s, "typed", Limits::default()).expect("admitted");
    let (body, ok) = client::request(&mut s, 1, "demo small").expect("demo");
    assert!(ok, "demo small failed: {body}");
    let (body, ok) = client::request(&mut s, 2, "frobnicate the flux").expect("reply");
    assert!(!ok, "unknown command must fail: {body}");
    assert!(
        body.contains(r#""code":"TV0601""#),
        "failure reply must carry the unknown-command code: {body}"
    );
    // The session survives the bad command: the design loaded before it
    // is still there.
    let (body, ok) = client::request(&mut s, 3, "revision").expect("reply after error");
    assert!(ok, "session must stay usable: {body}");
    // stop() joins connection threads, so the connection must close first.
    drop(s);
    handle.stop();
}

#[test]
fn concurrent_clients_match_tv_batch_at_every_jobs() {
    let script = std::fs::read_to_string(SMOKE).expect("committed smoke script");
    for jobs in [1usize, 2, 8] {
        let (expected, batch_ok) = batch_transcript(SMOKE, jobs);
        assert!(batch_ok, "the smoke script must replay cleanly locally");
        let mut config = ServeConfig::default();
        config.options.jobs = jobs;
        let handle = start(config);
        let endpoint = handle.endpoint().clone();
        std::thread::scope(|sc| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let script = script.as_str();
                    let endpoint = &endpoint;
                    sc.spawn(move || {
                        let mut stream = connect(endpoint);
                        let mut out = Vec::new();
                        let code = client::run_client(
                            &mut stream,
                            &format!("ident-{i}"),
                            Limits::default(),
                            std::io::Cursor::new(script),
                            &mut out,
                        )
                        .expect("client run");
                        (code, String::from_utf8(out).expect("UTF-8 transcript"))
                    })
                })
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                let (code, transcript) = h.join().expect("client thread");
                assert_eq!(code, 0, "client {i} at jobs={jobs} failed");
                assert_eq!(
                    transcript, expected,
                    "client {i} at jobs={jobs} diverged from tv batch"
                );
            }
        });
        handle.stop();
    }
}

#[test]
fn admission_cap_answers_typed_busy_and_counts_it() {
    nmos_tv::obs::counters::set_enabled(true);
    let handle = start(ServeConfig {
        max_sessions: 1,
        ..ServeConfig::default()
    });
    let mut holder = connect(handle.endpoint());
    client::handshake(&mut holder, "holder", Limits::default()).expect("holder admitted");
    let before = nmos_tv::obs::snapshot();
    let mut prober = connect(handle.endpoint());
    match client::handshake(&mut prober, "prober", Limits::default()) {
        Err(client::ClientError::Refused { code, message }) => {
            assert_eq!(code, codes::BUSY, "refusal: {message}");
        }
        other => panic!("one-slot server admitted a second session: {other:?}"),
    }
    let delta = nmos_tv::obs::snapshot().since(&before);
    assert!(
        delta.get(nmos_tv::obs::Counter::ServeRejected) >= 1,
        "the rejection must count serve.rejected"
    );
    // Freeing the slot readmits.
    drop(holder);
    let readmitted = (0..50).any(|_| {
        std::thread::sleep(std::time::Duration::from_millis(10));
        let mut s = connect(handle.endpoint());
        client::handshake(&mut s, "prober", Limits::default()).is_ok()
    });
    assert!(readmitted, "a freed slot must readmit within 500ms");
    drop(prober);
    handle.stop();
}

#[test]
fn per_tenant_limits_clamp_against_server_ceiling() {
    // A tenant asking for max_nodes=1 gets a session whose analyze is
    // refused by the input-size guard, and the refusal names the
    // clamped limit — proof the hello asks reach the engine.
    let handle = start(ServeConfig::default());
    let mut s = connect(handle.endpoint());
    client::handshake(
        &mut s,
        "clamped",
        Limits {
            max_nodes: Some(1),
            ..Limits::default()
        },
    )
    .expect("admitted");
    let (body, ok) = client::request(&mut s, 1, "demo small").expect("demo");
    assert!(ok, "demo itself is not analysis: {body}");
    let (body, ok) = client::request(&mut s, 2, "analyze").expect("analyze");
    assert!(!ok, "a one-node budget must refuse the analysis: {body}");
    assert!(
        body.contains("limit of 1"),
        "the refusal must name the hello-clamped budget: {body}"
    );
    drop(s);
    handle.stop();
}

#[test]
fn journal_backed_reconnect_resumes_the_session() {
    let dir = std::env::temp_dir().join(format!("tv-serve-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp journal dir");
    let handle = start(ServeConfig {
        journal_dir: Some(dir.display().to_string()),
        ..ServeConfig::default()
    });

    // First life: build state, then vanish without bye.
    let fingerprint = {
        let mut s = connect(handle.endpoint());
        let resumed = client::handshake(&mut s, "phoenix", Limits::default()).expect("first admit");
        assert_eq!(resumed, 0, "a fresh tenant has nothing to resume");
        for (id, cmd) in ["demo small", "edit resize pu_wq0 6 2"].iter().enumerate() {
            let (body, ok) = client::request(&mut s, id as u64 + 1, cmd).expect("command");
            assert!(ok, "{cmd} failed: {body}");
        }
        let (body, ok) = client::request(&mut s, 3, "analyze").expect("analyze");
        assert!(ok, "analyze failed: {body}");
        let fp = body
            .split(r#""fingerprint":""#)
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("analyze reply carries a fingerprint")
            .to_string();
        drop(s); // the connection dies, no bye
        fp
    };

    // Second life: the journal replays and the state is provably back.
    let mut s = loop {
        // The dead connection's admission slot may take a moment to
        // release (journaling forces one session per tenant).
        let mut s = connect(handle.endpoint());
        match client::handshake(&mut s, "phoenix", Limits::default()) {
            Ok(resumed) => {
                assert_eq!(resumed, 3, "demo + edit + analyze must replay");
                break s;
            }
            Err(client::ClientError::Refused { code, .. }) if code == codes::BUSY => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("reconnect failed: {e}"),
        }
    };
    let (body, ok) = client::request(&mut s, 1, "analyze").expect("analyze after resume");
    assert!(ok, "resumed analyze failed: {body}");
    assert!(
        body.contains(&format!(r#""fingerprint":"{fingerprint}""#)),
        "resumed session must reach the lost connection's fingerprint \
         {fingerprint}: {body}"
    );
    let (body, ok) = client::request(&mut s, 2, "revision").expect("revision");
    assert!(ok && body.contains(r#""revision":1"#), "revision: {body}");

    drop(s);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn frames_too_large_are_refused_before_allocation() {
    let handle = start(ServeConfig::default());
    let mut s = connect(handle.endpoint());
    use std::io::Write as _;
    // A hand-built length prefix claiming 2 MiB.
    let prefix = ((2u32 << 20) + 1).to_be_bytes();
    s.write_all(&prefix).expect("write prefix");
    s.flush().expect("flush");
    match proto::read_frame(&mut s).expect("read refusal") {
        Some(Frame::Error { code, .. }) => assert_eq!(code, codes::FRAME_TOO_LARGE),
        other => panic!("expected frame_too_large, got {other:?}"),
    }
    handle.stop();
}
