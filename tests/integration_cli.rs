//! End-to-end tests of the `tv` command-line binary, driving it exactly
//! as a user would: on `.sim` files from disk.

use std::process::Command;

fn tv() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tv"))
}

/// A small two-phase circuit with known properties: an input buffered
/// through a φ1 latch and a φ2 latch to an output, with two (deliberate)
/// 8:1 ratio violations.
const LATCH_SIM: &str = "| tiny two-phase latch chain
i d
k phi1 0
k phi2 1
e d VDD x 4 8
d x VDD x 8 4
e phi1 x m 4 4
e m GND qb 4 8
d qb VDD qb 8 4
e phi2 qb q2 4 4
e q2 GND out 4 8
d out VDD out 8 4
o out
C out 100
";

fn write_sim() -> tempfile::NamedTempPath {
    tempfile::NamedTempPath::new(LATCH_SIM)
}

/// Minimal self-cleaning temp file (no external crate needed).
mod tempfile {
    pub struct NamedTempPath(std::path::PathBuf);
    impl NamedTempPath {
        pub fn new(contents: &str) -> Self {
            let mut path = std::env::temp_dir();
            path.push(format!(
                "tv-test-{}-{}.sim",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .expect("clock")
                    .as_nanos()
            ));
            std::fs::write(&path, contents).expect("write temp file");
            NamedTempPath(path)
        }
        pub fn path(&self) -> &std::path::Path {
            &self.0
        }
    }
    impl Drop for NamedTempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

#[test]
fn analyze_reports_violations_but_exits_clean_without_check() {
    let f = write_sim();
    let out = tv().arg("analyze").arg(f.path()).output().expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("TV timing report"), "{text}");
    assert!(text.contains("minimum cycle"));
    assert!(text.contains("ratio violation"));
    // Violations are reported but not gated without --check.
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn analyze_with_check_exits_three_on_violations() {
    let f = write_sim();
    let out = tv()
        .args(["analyze"])
        .arg(f.path())
        .args(["--check"])
        .output()
        .expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ratio violation"), "{text}");
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn check_lists_the_ratio_violations() {
    let f = write_sim();
    let out = tv().arg("check").arg(f.path()).output().expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.matches("ratio violation").count(), 2, "{text}");
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn flow_exits_clean_when_everything_resolves() {
    let f = write_sim();
    let out = tv().arg("flow").arg(f.path()).output().expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("100.0% coverage"), "{text}");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn query_prints_a_path_with_arrivals() {
    let f = write_sim();
    let out = tv()
        .args(["query"])
        .arg(f.path())
        .args(["d", "out"])
        .output()
        .expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("worst path d -> out"), "{text}");
    assert!(text.lines().count() >= 4);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn query_unreachable_exits_dirty() {
    let f = write_sim();
    let out = tv()
        .args(["query"])
        .arg(f.path())
        .args(["out", "d"])
        .output()
        .expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("not reachable"), "{text}");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn spice_emits_a_deck() {
    let f = write_sim();
    let out = tv().arg("spice").arg(f.path()).output().expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(".model ENH NMOS"));
    assert!(text.trim_end().ends_with(".end"));
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn bad_usage_exits_two_with_usage_text() {
    let out = tv().output().expect("run tv");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");

    let out = tv().args(["frobnicate"]).output().expect("run tv");
    assert_eq!(out.status.code(), Some(2));

    let f = write_sim();
    let out = tv()
        .args(["analyze"])
        .arg(f.path())
        .args(["--frob"])
        .output()
        .expect("run tv");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn gen_rejects_zero_negative_and_non_numeric_core_counts() {
    // `tv gen` must refuse a meaningless core count as a usage error
    // (exit 2) with a diagnostic plus the usage text — not generate an
    // empty design, and not crash on the bad parse.
    for bad in ["0", "-3", "x"] {
        let out = tv()
            .args(["gen", "--cores", bad, "--out", "/dev/null"])
            .output()
            .expect("run tv gen");
        assert_eq!(
            out.status.code(),
            Some(2),
            "--cores {bad} must be a usage error"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("core count"), "--cores {bad}: {err}");
        assert!(err.contains("usage:"), "--cores {bad}: {err}");
    }
}

#[test]
fn trace_flag_rejects_missing_or_flaglike_operand() {
    let f = write_sim();
    // `--trace` followed by another flag used to silently write a file
    // literally named `--profile`; it must be a usage error instead.
    let out = tv()
        .args(["analyze", "--trace", "--profile"])
        .arg(f.path())
        .output()
        .expect("run tv");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--trace needs a filename"), "{err}");
    assert!(
        !std::path::Path::new("--profile").exists(),
        "flag-named file was created"
    );

    // Trailing `--trace` with no operand at all.
    let out = tv()
        .args(["analyze"])
        .arg(f.path())
        .args(["--trace"])
        .output()
        .expect("run tv");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--trace needs a filename"), "{err}");
}

#[test]
fn metrics_flag_rejects_missing_or_flaglike_operand() {
    let f = write_sim();
    let out = tv()
        .args(["analyze", "--metrics", "--jobs"])
        .arg(f.path())
        .output()
        .expect("run tv");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--metrics needs a filename"), "{err}");

    let out = tv()
        .args(["analyze"])
        .arg(f.path())
        .args(["--metrics"])
        .output()
        .expect("run tv");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_documents_exit_codes() {
    let out = tv().arg("--help").output().expect("run tv");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("exit status"), "{text}");
    assert!(text.contains("usage error"), "{text}");
    assert!(text.contains("--max-errors"), "{text}");
    assert!(text.contains("fuzz"), "{text}");
}

#[test]
fn missing_file_is_an_analysis_failure() {
    let out = tv()
        .args(["analyze", "/nonexistent/definitely.sim"])
        .output()
        .expect("run tv");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn analyze_flags_are_honored() {
    let f = write_sim();
    // A 1 ns cycle cannot be met: slack goes negative; --check gates it.
    let out = tv()
        .args(["analyze"])
        .arg(f.path())
        .args([
            "--cycle", "1.0", "--top", "2", "--model", "lumped", "--check",
        ])
        .output()
        .expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("slack -"), "{text}");
    assert_eq!(out.status.code(), Some(3));

    // --no-case suppresses the per-phase sections.
    let out = tv()
        .args(["analyze"])
        .arg(f.path())
        .args(["--no-case"])
        .output()
        .expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("phase 1:"), "{text}");
}

/// The latch corpus with three injected faults: an unknown record, a
/// transistor line with a malformed width, and a shorted channel.
const BROKEN_SIM: &str = "| corpus with three injected errors
i d
k phi1 0
k phi2 1
frob x y
e d VDD x 4 eight
e phi1 x x 4 4
e d VDD x 4 8
d x VDD x 8 4
o x
C x 100
";

#[test]
fn recovering_parse_reports_all_errors_in_one_run() {
    let f = tempfile::NamedTempPath::new(BROKEN_SIM);
    let out = tv().arg("analyze").arg(f.path()).output().expect("run tv");
    let err = String::from_utf8_lossy(&out.stderr);
    // All three faults in a single invocation, each with line:col and code.
    assert!(err.contains("TV0001"), "unknown record: {err}");
    assert!(err.contains("TV0003"), "bad number: {err}");
    assert!(err.contains("TV0005"), "shorted channel: {err}");
    assert!(err.matches("error").count() >= 3, "{err}");
    assert!(err.contains(":5:"), "line of first fault: {err}");
    // Parse errors present => analysis failure exit, but the surviving
    // netlist is still analyzed and reported.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("TV timing report"), "{text}");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn diag_format_json_emits_machine_readable_diagnostics() {
    let f = tempfile::NamedTempPath::new(BROKEN_SIM);
    let out = tv()
        .args(["analyze"])
        .arg(f.path())
        .args(["--diag-format", "json"])
        .output()
        .expect("run tv");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("\"code\":\"TV0001\""), "{err}");
    assert!(err.contains("\"code\":\"TV0003\""), "{err}");
    assert!(err.contains("\"code\":\"TV0005\""), "{err}");
    assert!(err.contains("\"severity\":\"error\""), "{err}");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn max_errors_caps_the_report_and_counts_the_rest() {
    let f = tempfile::NamedTempPath::new(BROKEN_SIM);
    let out = tv()
        .args(["analyze"])
        .arg(f.path())
        .args(["--max-errors", "1"])
        .output()
        .expect("run tv");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("TV0001"), "{err}");
    assert!(!err.contains("TV0005"), "capped: {err}");
    assert!(err.contains("suppressed"), "{err}");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn deadline_and_relax_budget_flags_parse() {
    let f = write_sim();
    let out = tv()
        .args(["analyze"])
        .arg(f.path())
        .args(["--relax-budget", "100000", "--deadline", "30"])
        .output()
        .expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("TV timing report"), "{text}");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn oversized_input_is_refused_with_max_nodes() {
    let f = write_sim();
    let out = tv()
        .args(["analyze"])
        .arg(f.path())
        .args(["--max-nodes", "2"])
        .output()
        .expect("run tv");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("too large"), "{err}");
}
