//! End-to-end tests of the `tv` command-line binary, driving it exactly
//! as a user would: on `.sim` files from disk.

use std::process::Command;

fn tv() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tv"))
}

/// A small two-phase circuit with known properties: an input buffered
/// through a φ1 latch and a φ2 latch to an output, with two (deliberate)
/// 8:1 ratio violations.
const LATCH_SIM: &str = "| tiny two-phase latch chain
i d
k phi1 0
k phi2 1
e d VDD x 4 8
d x VDD x 8 4
e phi1 x m 4 4
e m GND qb 4 8
d qb VDD qb 8 4
e phi2 qb q2 4 4
e q2 GND out 4 8
d out VDD out 8 4
o out
C out 100
";

fn write_sim() -> tempfile::NamedTempPath {
    tempfile::NamedTempPath::new(LATCH_SIM)
}

/// Minimal self-cleaning temp file (no external crate needed).
mod tempfile {
    pub struct NamedTempPath(std::path::PathBuf);
    impl NamedTempPath {
        pub fn new(contents: &str) -> Self {
            let mut path = std::env::temp_dir();
            path.push(format!(
                "tv-test-{}-{}.sim",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .expect("clock")
                    .as_nanos()
            ));
            std::fs::write(&path, contents).expect("write temp file");
            NamedTempPath(path)
        }
        pub fn path(&self) -> &std::path::Path {
            &self.0
        }
    }
    impl Drop for NamedTempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

#[test]
fn analyze_reports_and_exits_dirty_on_violations() {
    let f = write_sim();
    let out = tv().arg("analyze").arg(f.path()).output().expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("TV timing report"), "{text}");
    assert!(text.contains("minimum cycle"));
    assert!(text.contains("ratio violation"));
    // Electrical issues => exit status 2.
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn check_lists_the_ratio_violations() {
    let f = write_sim();
    let out = tv().arg("check").arg(f.path()).output().expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.matches("ratio violation").count(), 2, "{text}");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn flow_exits_clean_when_everything_resolves() {
    let f = write_sim();
    let out = tv().arg("flow").arg(f.path()).output().expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("100.0% coverage"), "{text}");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn query_prints_a_path_with_arrivals() {
    let f = write_sim();
    let out = tv()
        .args(["query"])
        .arg(f.path())
        .args(["d", "out"])
        .output()
        .expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("worst path d -> out"), "{text}");
    assert!(text.lines().count() >= 4);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn query_unreachable_exits_dirty() {
    let f = write_sim();
    let out = tv()
        .args(["query"])
        .arg(f.path())
        .args(["out", "d"])
        .output()
        .expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("not reachable"), "{text}");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn spice_emits_a_deck() {
    let f = write_sim();
    let out = tv().arg("spice").arg(f.path()).output().expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(".model ENH NMOS"));
    assert!(text.trim_end().ends_with(".end"));
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn bad_usage_exits_one_with_usage_text() {
    let out = tv().output().expect("run tv");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");

    let out = tv().args(["frobnicate"]).output().expect("run tv");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn missing_file_is_a_usage_error() {
    let out = tv()
        .args(["analyze", "/nonexistent/definitely.sim"])
        .output()
        .expect("run tv");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn analyze_flags_are_honored() {
    let f = write_sim();
    // A 1 ns cycle cannot be met: slack goes negative, exit stays 2.
    let out = tv()
        .args(["analyze"])
        .arg(f.path())
        .args(["--cycle", "1.0", "--top", "2", "--model", "lumped"])
        .output()
        .expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("slack -"), "{text}");
    assert_eq!(out.status.code(), Some(2));

    // --no-case suppresses the per-phase sections.
    let out = tv()
        .args(["analyze"])
        .arg(f.path())
        .args(["--no-case"])
        .output()
        .expect("run tv");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("phase 1:"), "{text}");
}
