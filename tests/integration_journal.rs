//! Crash/replay property suite for the session journal.
//!
//! The crash-safety contract: killing a journaled session after *any*
//! prefix of a command stream and resuming from the journal lands on a
//! state bit-identical to the uninterrupted run — same replies, same
//! revisions, same report fingerprints — at every worker count. A
//! journal whose tail was torn mid-append recovers the same way after
//! dropping the tail; interior damage refuses loudly.

use std::io::Cursor;

use nmos_tv::core::AnalysisOptions;
use nmos_tv::session::run_session_with;

/// Splitmix-style deterministic generator (no rand dependency).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A 50-command random session script over the small demo datapath.
/// Every command always succeeds (the journal then has one entry per
/// command) and the script ends with `analyze` so the final reply
/// carries a fingerprint.
fn random_script(seed: u64) -> Vec<String> {
    let mut rng = Lcg(seed);
    let mut script = vec!["demo small".to_string()];
    while script.len() < 49 {
        script.push(match rng.pick(8) {
            0 | 1 => "analyze".to_string(),
            2 => "flow".to_string(),
            3 => "revision".to_string(),
            4 => format!("edit resize pu_wq0 {} 2", [4, 6, 8][rng.pick(3)]),
            5 => format!("edit resize wqinv0_pd {} 2", [4, 6, 8][rng.pick(3)]),
            6 => format!("edit setcap out0 0.0{}", 1 + rng.pick(9)),
            _ => format!("edit setcap wb0 0.0{}", 1 + rng.pick(9)),
        });
    }
    script.push("analyze".to_string());
    script
}

fn temp_path(stem: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "tv-journal-test-{}-{}-{stem}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos()
    ));
    p.to_str().expect("temp path is UTF-8").to_string()
}

/// Runs `commands` (plus `quit`) through one in-process session.
fn run(
    commands: &[String],
    jobs: usize,
    journal: Option<&str>,
    resume: Option<&str>,
) -> (Vec<String>, u8) {
    let mut input = commands.join("\n");
    input.push_str("\nquit\n");
    let mut out = Vec::new();
    let options = AnalysisOptions {
        jobs,
        ..AnalysisOptions::default()
    };
    let code = run_session_with(Cursor::new(input), &mut out, options, 20, journal, resume)
        .expect("session runs");
    let text = String::from_utf8(out).expect("replies are UTF-8");
    (text.lines().map(str::to_string).collect(), code)
}

/// The property itself, for one worker count: for every prefix length
/// `k` of the script, "crash" after `k` journaled commands (simulated
/// by cutting the journal file there — appends are per-command and
/// flushed, so this is exactly the on-disk state a kill leaves), resume
/// from the cut journal, feed the remaining commands, and require every
/// reply from `k` on to be byte-identical to the uninterrupted run.
/// Every third cut also gets a torn garbage tail, which resume must
/// drop (`"torn":true`) without changing any state.
fn crash_replay_holds_at(jobs: usize) {
    let script = random_script(0x5EED_0000 + jobs as u64);
    let (baseline, base_code) = run(&script, jobs, None, None);
    assert_eq!(base_code, 0, "baseline must be clean: {baseline:?}");
    assert_eq!(
        baseline.len(),
        script.len() + 1,
        "one reply per command plus quit"
    );

    let journal_path = temp_path(&format!("j{jobs}.log"));
    let (journaled, code) = run(&script, jobs, Some(&journal_path), None);
    assert_eq!(code, 0);
    assert_eq!(journaled, baseline, "journaling must not change replies");
    let journal_text = std::fs::read_to_string(&journal_path).expect("journal written");
    let lines: Vec<&str> = journal_text.lines().collect();
    assert_eq!(
        lines.len(),
        script.len() + 1,
        "header + one entry per command"
    );

    let resume_path = temp_path(&format!("r{jobs}.log"));
    for k in 0..=script.len() {
        let mut prefix = lines[..=k].join("\n");
        prefix.push('\n');
        let torn = k % 3 == 2;
        if torn {
            prefix.push_str("fe3d bad torn tail");
        }
        std::fs::write(&resume_path, &prefix).expect("write cut journal");
        let (replies, code) = run(&script[k..], jobs, None, Some(&resume_path));
        assert_eq!(code, 0, "cut {k} (torn {torn}) failed: {replies:?}");
        let summary = &replies[0];
        assert!(
            summary.contains(r#""ok":true,"cmd":"resume""#)
                && summary.contains(&format!(r#""replayed":{k},"torn":{torn}"#)),
            "cut {k}: unexpected resume summary {summary}"
        );
        assert_eq!(
            replies[1..],
            baseline[k..],
            "cut {k} (torn {torn}): resumed replies diverge from the uninterrupted run"
        );
    }

    let _ = std::fs::remove_file(&journal_path);
    let _ = std::fs::remove_file(&resume_path);
}

#[test]
fn crash_replay_is_bit_identical_serial() {
    crash_replay_holds_at(1);
}

#[test]
fn crash_replay_is_bit_identical_two_workers() {
    crash_replay_holds_at(2);
}

#[test]
fn crash_replay_is_bit_identical_eight_workers() {
    crash_replay_holds_at(8);
}

/// Interior damage — a bit flip before the final line — must refuse the
/// whole journal with `TV0501` and exit 1, never replay a guess.
#[test]
fn interior_damage_refuses_resume() {
    let script = random_script(0xBAD);
    let journal_path = temp_path("interior.log");
    let (_, code) = run(&script, 1, Some(&journal_path), None);
    assert_eq!(code, 0);
    let mut text = std::fs::read_to_string(&journal_path).expect("journal written");
    // Corrupt a byte in the middle of line 3's command field.
    let at = text
        .match_indices('\n')
        .nth(2)
        .map(|(i, _)| i - 2)
        .expect("journal has entries");
    text.replace_range(at..at + 1, "?");
    std::fs::write(&journal_path, &text).expect("write damaged journal");
    let (replies, code) = run(&script, 1, None, Some(&journal_path));
    assert_eq!(code, 1);
    assert_eq!(replies.len(), 1, "refusal is the only reply: {replies:?}");
    assert!(
        replies[0].contains(r#""code":"TV0501""#),
        "expected TV0501 refusal, got {}",
        replies[0]
    );
    let _ = std::fs::remove_file(&journal_path);
}

/// A journal that records state the current engine cannot reproduce
/// (here: a tampered fingerprint with a valid checksum) must refuse
/// with `TV0503` rather than continue from silently different bits.
#[test]
fn divergent_replay_refuses_resume() {
    let journal_path = temp_path("diverged.log");
    let script: Vec<String> = ["demo small", "analyze"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let (_, code) = run(&script, 1, Some(&journal_path), None);
    assert_eq!(code, 0);
    let text = std::fs::read_to_string(&journal_path).expect("journal written");
    // Rewrite the analyze entry's fingerprint, keeping the checksum
    // valid, via the journal's own renderer.
    let rewritten: String = {
        use nmos_tv::journal::{parse, render_entry, HEADER};
        let mut loaded = parse(&text).expect("clean journal");
        let e = loaded
            .entries
            .iter_mut()
            .find(|e| e.fingerprint.is_some())
            .expect("analyze entry");
        e.fingerprint = Some("0x0123456789abcdef".to_string());
        let mut s = format!("{HEADER}\n");
        for e in &loaded.entries {
            s.push_str(&render_entry(e));
        }
        s
    };
    std::fs::write(&journal_path, rewritten).expect("write tampered journal");
    let (replies, code) = run(&[], 1, None, Some(&journal_path));
    assert_eq!(code, 1);
    assert!(
        replies[0].contains(r#""code":"TV0503""#),
        "expected TV0503 refusal, got {}",
        replies[0]
    );
    let _ = std::fs::remove_file(&journal_path);
}
