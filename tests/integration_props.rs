//! Property-style tests over the core data structures and invariants.
//!
//! These were originally written against `proptest`; the suite now drives
//! the same properties from the in-tree seeded PRNG (`tv_gen::rng::Rng64`)
//! so the workspace builds with no external dependencies (and therefore
//! offline). Every case is deterministic in its seed, so a failure report
//! of the form `seed=N` reproduces exactly.

use nmos_tv::core::{AnalysisOptions, Analyzer};
use nmos_tv::flow::{analyze, DeviceRole, Direction, RuleSet};
use nmos_tv::gen::random::{random_logic, RandomMix};
use nmos_tv::gen::rng::Rng64;
use nmos_tv::netlist::{sim_format, Tech};
use nmos_tv::rc::bounds::crossing_bounds_all;
use nmos_tv::rc::elmore::{crossing_estimate, elmore_delays};
use nmos_tv::rc::lumped::lumped_tau;
use nmos_tv::rc::passchain::{buffered_chain_delay, chain_elmore};
use nmos_tv::rc::tree::RcTree;

/// A random RC tree: node 0 is the root; each extra edge hangs off a
/// deterministically varied parent.
fn random_rc_tree(rng: &mut Rng64) -> RcTree {
    let driver_r = rng.f64_range(0.01, 50.0);
    let root_c = rng.f64_range(0.0005, 2.0);
    let edges = rng.usize_range(0, 24);
    let mut tree = RcTree::new(driver_r);
    tree.add_cap(tree.root(), root_c);
    let mut ids = vec![tree.root()];
    for i in 0..edges {
        let parent = ids[(i * 7 + 3) % ids.len()];
        let r = rng.f64_range(0.01, 50.0);
        let c = rng.f64_range(0.0005, 2.0);
        ids.push(tree.add_child(parent, r, c));
    }
    tree
}

#[test]
fn elmore_is_monotone_along_every_path() {
    for seed in 0..64u64 {
        let tree = random_rc_tree(&mut Rng64::new(seed));
        let d = elmore_delays(&tree);
        for id in tree.ids() {
            if let Some(p) = tree.parent(id) {
                assert!(d[id.index()] >= d[p.index()] - 1e-12, "seed={seed}");
            }
        }
    }
}

#[test]
fn bounds_bracket_single_pole_estimate() {
    for seed in 0..64u64 {
        let mut rng = Rng64::new(seed);
        let tree = random_rc_tree(&mut rng);
        let x = rng.f64_range(0.05, 0.95);
        let elmore = elmore_delays(&tree);
        for (i, b) in crossing_bounds_all(&tree, x).iter().enumerate() {
            let est = crossing_estimate(elmore[i], x);
            assert!(
                b.lower <= est + 1e-9,
                "seed={seed}: lower {} > est {est}",
                b.lower
            );
            assert!(
                est <= b.upper + 1e-9,
                "seed={seed}: est {est} > upper {}",
                b.upper
            );
        }
    }
}

#[test]
fn moment_matched_estimate_respects_certified_bounds() {
    use nmos_tv::rc::moments::moment_matched_crossings;
    for seed in 0..64u64 {
        let mut rng = Rng64::new(seed);
        let tree = random_rc_tree(&mut rng);
        let x = rng.f64_range(0.1, 0.9);
        let matched = moment_matched_crossings(&tree, x);
        for (i, b) in crossing_bounds_all(&tree, x).iter().enumerate() {
            assert!(
                matched[i] <= b.upper + 1e-6,
                "seed={seed}: matched {} above certified upper {}",
                matched[i],
                b.upper
            );
            assert!(matched[i] >= 0.0, "seed={seed}");
        }
    }
}

#[test]
fn subtree_caps_conserve_total() {
    for seed in 0..64u64 {
        let tree = random_rc_tree(&mut Rng64::new(seed));
        let sub = tree.subtree_caps();
        let total: f64 = tree.ids().map(|i| tree.cap(i)).sum();
        assert!((sub[0] - total).abs() < 1e-9, "seed={seed}");
        assert!((tree.total_cap() - total).abs() < 1e-9, "seed={seed}");
    }
}

#[test]
fn lumped_never_exceeds_elmore_at_leaves() {
    // Lumped tau (driver R × total C) is a lower bound on the Elmore
    // delay of the far end of any chain hanging off the driver.
    for seed in 0..64u64 {
        let tree = random_rc_tree(&mut Rng64::new(seed));
        let d = elmore_delays(&tree);
        let worst = d.iter().cloned().fold(0.0f64, f64::max);
        assert!(lumped_tau(&tree) <= worst + 1e-9, "seed={seed}");
    }
}

#[test]
fn chain_formula_matches_tree_everywhere() {
    for seed in 0..64u64 {
        let mut rng = Rng64::new(seed);
        let rd = rng.f64_range(0.1, 40.0);
        let r = rng.f64_range(0.1, 40.0);
        let c = rng.f64_range(0.001, 1.0);
        let n = rng.usize_range(1, 20);
        let mut tree = RcTree::new(rd);
        let mut last = tree.root();
        for _ in 0..n {
            last = tree.add_child(last, r, c);
        }
        let formula = chain_elmore(rd, r, c, n);
        let direct = elmore_delays(&tree)[last.index()];
        assert!(
            (formula - direct).abs() < 1e-6 * formula.max(1.0),
            "seed={seed}: formula {formula} vs direct {direct}"
        );
    }
}

#[test]
fn buffering_never_loses_to_raw_on_long_chains() {
    // At the optimal interval, a 64-section buffered chain never loses
    // to the raw quadratic chain.
    for seed in 0..64u64 {
        let mut rng = Rng64::new(seed);
        let r = rng.f64_range(1.0, 40.0);
        let c = rng.f64_range(0.01, 0.5);
        let t_buf = rng.f64_range(0.1, 5.0);
        let k = nmos_tv::rc::passchain::optimal_buffer_interval(r, c, t_buf);
        let raw = chain_elmore(0.0, r, c, 64);
        let buffered = buffered_chain_delay(0.0, r, c, t_buf, 64, k);
        assert!(buffered <= raw + 1e-9, "seed={seed}");
    }
}

#[test]
fn random_netlists_analyze_cleanly() {
    for seed in 0..24u64 {
        let mut rng = Rng64::new(seed ^ 0xA5A5);
        let size = rng.usize_range(50, 400);
        let circuit = random_logic(Tech::nmos4um(), size, seed, RandomMix::default());
        let nl = &circuit.netlist;

        // Flow invariants: every pass device gets exactly one disposition.
        let flow = analyze(nl, &RuleSet::all());
        let report = flow.report(nl);
        assert_eq!(
            report.oriented + report.bidirectional + report.unresolved,
            report.pass_devices,
            "seed={seed}"
        );
        assert_eq!(
            report.by_external + report.by_restored + report.by_chain + report.by_sink,
            report.oriented,
            "seed={seed}"
        );

        // Oriented directions point at actual channel terminals.
        for dref in nl.devices() {
            if let Direction::Toward(dst) = flow.direction(dref.id) {
                assert!(dref.device.channel_touches(dst), "seed={seed}");
            }
            if flow.device_role(dref.id) != DeviceRole::Pass {
                assert!(
                    flow.direction(dref.id) != Direction::Unresolved
                        || flow.device_role(dref.id) == DeviceRole::Pass,
                    "seed={seed}"
                );
            }
        }

        // The analyzer terminates and arrivals are non-negative.
        let timing = Analyzer::new(nl).run(&AnalysisOptions::default());
        for id in nl.node_ids() {
            if let Some(t) = timing.combinational.arrival(id) {
                assert!(t >= 0.0, "seed={seed}");
            }
        }
    }
}

#[test]
fn sim_format_round_trips_random_netlists() {
    for seed in 0..16u64 {
        let circuit = random_logic(Tech::nmos4um(), 150, seed, RandomMix::default());
        let text = sim_format::write(&circuit.netlist);
        let back = sim_format::parse(&text, Tech::nmos4um()).expect("parse");
        assert_eq!(
            back.device_count(),
            circuit.netlist.device_count(),
            "seed={seed}"
        );
        assert_eq!(
            back.node_count(),
            circuit.netlist.node_count(),
            "seed={seed}"
        );
        // Capacitance totals survive (gate/diffusion re-derived, extras kept).
        let c1 = circuit.netlist.total_capacitance();
        let c2 = back.total_capacitance();
        assert!((c1 - c2).abs() < 1e-9 * c1.max(1.0), "seed={seed}");
    }
}

#[test]
fn two_phase_windows_partition_the_cycle() {
    for seed in 0..64u64 {
        let mut rng = Rng64::new(seed);
        let w1 = rng.f64_range(0.5, 50.0);
        let w2 = rng.f64_range(0.5, 50.0);
        let gap = rng.f64_range(0.1, 5.0);
        let clk = nmos_tv::clocks::TwoPhaseClock::new(w1, w2, gap);
        let (s1, e1) = clk.window(0);
        let (s2, e2) = clk.window(1);
        assert!(
            s1 < e1 && e1 <= s2 && s2 < e2 && e2 <= clk.cycle(),
            "seed={seed}"
        );
        assert!(
            (clk.cycle() - (w1 + w2 + 2.0 * gap)).abs() < 1e-9,
            "seed={seed}"
        );
        // Scaling to a larger cycle preserves the ratio.
        let scaled = clk.with_cycle(clk.cycle() * 2.0);
        assert!(
            (scaled.width(0) / scaled.width(1) - w1 / w2).abs() < 1e-6,
            "seed={seed}"
        );
    }
}

// Cross-engine validation: on random restoring logic (no pass muxes or
// latches, so values are strictly determined), the switch-level and
// analog simulators must agree at every node.
#[test]
fn switch_level_agrees_with_analog_on_random_logic() {
    use nmos_tv::sim::switch::{Level, SwitchSim};
    use nmos_tv::sim::{SimOptions, Simulator, Stimulus, Waveform};

    for case in 0..12u64 {
        let mut rng = Rng64::new(case.wrapping_mul(0x9E3779B9));
        let seed = rng.next_u64() % 100;
        let inputs_high = (rng.next_u64() % 256) as u32;

        let mix = RandomMix {
            inverter: 0.5,
            nand: 0.3,
            nor: 0.2,
            pass_mux: 0.0,
            latch: 0.0,
        };
        let tech = Tech::nmos4um();
        let c = random_logic(tech.clone(), 60, seed, mix);
        let nl = &c.netlist;

        // Switch level.
        let mut sw = SwitchSim::new(nl);
        let input_nodes = nl.inputs();
        for (i, &n) in input_nodes.iter().enumerate() {
            let high = (inputs_high >> i) & 1 == 1;
            sw.set(n, if high { Level::One } else { Level::Zero });
        }
        for &(clk, _) in nl.clocks() {
            sw.set(clk, Level::Zero);
        }
        sw.settle().expect("restoring logic settles");

        // Analog, same input vector, settled DC.
        let mut stim = Stimulus::new(nl);
        for (i, &n) in input_nodes.iter().enumerate() {
            let high = (inputs_high >> i) & 1 == 1;
            stim.drive(n, Waveform::Const(if high { tech.vdd } else { 0.0 }));
        }
        // Clock node exists but gates nothing in this mix; hold it low.
        for &(clk, _) in nl.clocks() {
            stim.drive(clk, Waveform::Const(0.0));
        }
        let mut opts = SimOptions::for_duration(1.0);
        opts.settle = 400.0;
        let r = Simulator::new(nl, stim, opts).run();

        let flow = analyze(nl, &RuleSet::all());
        for id in nl.node_ids() {
            if nl.node(id).role().is_rail() {
                continue;
            }
            let v = r.final_voltages()[id.index()];
            let analog = if v > tech.switch_voltage() {
                Level::One
            } else {
                Level::Zero
            };
            match sw.value(id) {
                // X is legitimate only on isolated interior nodes (e.g.
                // the series node of a NAND whose legs are all off); a
                // restored stage output must always resolve and agree.
                Level::X => assert_ne!(
                    flow.node_class(id),
                    nmos_tv::flow::NodeClass::Restored,
                    "seed={seed}: restored node {} is X",
                    nl.node_name(id)
                ),
                switchv => assert_eq!(
                    switchv,
                    analog,
                    "seed={seed}: node {} (analog {} V)",
                    nl.node_name(id),
                    v
                ),
            }
        }
    }
}

// The simulator is expensive; a handful of random cases suffices to
// guard the static-conservatism contract.
#[test]
fn static_estimate_not_wildly_optimistic_on_random_inverter_trees() {
    use nmos_tv::gen::chains::inverter_chain;
    use nmos_tv::sim::{measure, SimOptions, Simulator, Stimulus, Waveform};
    for stages in 2usize..5 {
        for fanout in 1usize..3 {
            let tech = Tech::nmos4um();
            let c = inverter_chain(tech.clone(), 2 * stages, fanout);
            let report = Analyzer::new(&c.netlist).run(&AnalysisOptions::default());
            let est = report.combinational.arrivals.rise(c.output).expect("rises");

            let mut stim = Stimulus::new(&c.netlist);
            stim.drive(c.input, Waveform::step_up(1.0, tech.vdd));
            let r = Simulator::new(&c.netlist, stim, SimOptions::for_duration(60.0)).run();
            let sim = measure::delay_50(&r, c.input, c.output, &tech).expect("switches");
            assert!(
                est >= 0.9 * sim,
                "stages={stages} fanout={fanout}: estimate {est} vs sim {sim}"
            );
            assert!(
                est <= 2.0 * sim,
                "stages={stages} fanout={fanout}: estimate {est} vs sim {sim}"
            );
        }
    }
}

/// Tentpole guarantee: the levelized engine is bit-identical at every
/// thread count — arrivals, the cyclic flag, the relaxation count, and
/// the endpoint table all match the serial walk exactly.
#[test]
fn parallel_propagation_bit_identical_to_serial() {
    use nmos_tv::clocks::qualify::qualify_with_flow;
    use nmos_tv::core::{propagate_with, DelayModel, PhaseCase, TimingGraph};
    use nmos_tv::rc::SlopeModel;

    for seed in 0..8u64 {
        let circuit = random_logic(
            Tech::nmos4um(),
            500 + 100 * seed as usize,
            0xFEED_0000 + seed,
            RandomMix::default(),
        );
        let nl = &circuit.netlist;
        let flow = analyze(nl, &RuleSet::all());
        let q = qualify_with_flow(nl, &flow);
        for case in [
            PhaseCase::all_active(),
            PhaseCase::phase(0),
            PhaseCase::phase(1),
        ] {
            let g = TimingGraph::build(nl, &flow, &q, case, DelayModel::Elmore, 1.0);
            let sources: Vec<_> = nl
                .node_ids()
                .filter(|&i| nl.node(i).role().is_external_source())
                .collect();
            let endpoints: Vec<_> = nl
                .node_ids()
                .filter(|&i| !nl.node(i).role().is_rail())
                .collect();
            let slope = SlopeModel::calibrated();
            let serial = propagate_with(nl, &g, &sources, &endpoints, &slope, 1);
            for jobs in [2usize, 8] {
                let par = propagate_with(nl, &g, &sources, &endpoints, &slope, jobs);
                assert_eq!(serial.cyclic, par.cyclic, "seed={seed} jobs={jobs}");
                assert_eq!(
                    serial.relaxations, par.relaxations,
                    "seed={seed} jobs={jobs}"
                );
                for i in nl.node_ids() {
                    for (a, b) in [
                        (serial.arrivals.rise(i), par.arrivals.rise(i)),
                        (serial.arrivals.fall(i), par.arrivals.fall(i)),
                    ] {
                        assert_eq!(
                            a.map(f64::to_bits),
                            b.map(f64::to_bits),
                            "seed={seed} jobs={jobs} node={i:?}"
                        );
                    }
                }
                assert_eq!(serial.endpoints.len(), par.endpoints.len());
                for ((n1, t1), (n2, t2)) in serial.endpoints.iter().zip(&par.endpoints) {
                    assert_eq!(n1, n2, "seed={seed} jobs={jobs}");
                    assert_eq!(t1.to_bits(), t2.to_bits(), "seed={seed} jobs={jobs}");
                }
            }
        }
    }
}

/// Full-pipeline determinism: `Analyzer::run` with jobs 1/2/8 and with
/// the incremental cache produces bit-identical reports on random
/// netlists — arrivals, min cycle, and slack included.
#[test]
fn analyzer_jobs_and_incremental_bit_identical() {
    use nmos_tv::core::IncrementalCache;

    for seed in 0..6u64 {
        let circuit = random_logic(
            Tech::nmos4um(),
            400 + 150 * seed as usize,
            0xAB5EED + seed,
            RandomMix::default(),
        );
        let nl = &circuit.netlist;
        let cold = Analyzer::new(nl).run(&AnalysisOptions::default());
        let variants = [
            AnalysisOptions {
                jobs: 2,
                ..AnalysisOptions::default()
            },
            AnalysisOptions {
                jobs: 8,
                ..AnalysisOptions::default()
            },
            AnalysisOptions {
                incremental: true,
                jobs: 4,
                ..AnalysisOptions::default()
            },
        ];
        for (vi, opts) in variants.iter().enumerate() {
            let r = Analyzer::new(nl).run(opts);
            assert_eq!(
                cold.min_cycle.map(f64::to_bits),
                r.min_cycle.map(f64::to_bits),
                "seed={seed} variant={vi}"
            );
            assert_eq!(cold.phases.len(), r.phases.len(), "seed={seed}");
            for (p0, p1) in cold.phases.iter().zip(&r.phases) {
                assert_eq!(
                    p0.slack.map(f64::to_bits),
                    p1.slack.map(f64::to_bits),
                    "seed={seed} variant={vi} phase={}",
                    p0.phase
                );
            }
            for i in nl.node_ids() {
                assert_eq!(
                    cold.combinational.arrival(i).map(f64::to_bits),
                    r.combinational.arrival(i).map(f64::to_bits),
                    "seed={seed} variant={vi} node={i:?}"
                );
            }
        }

        // Cross-run incremental: a warm re-run against a held cache is
        // bit-identical to cold and recomputes nothing.
        let mut cache = IncrementalCache::new();
        let first = Analyzer::new(nl).run_incremental(&AnalysisOptions::default(), &mut cache);
        let second = Analyzer::new(nl).run_incremental(&AnalysisOptions::default(), &mut cache);
        for i in nl.node_ids() {
            assert_eq!(
                first.combinational.arrival(i).map(f64::to_bits),
                second.combinational.arrival(i).map(f64::to_bits),
                "seed={seed} warm node={i:?}"
            );
            assert_eq!(
                cold.combinational.arrival(i).map(f64::to_bits),
                second.combinational.arrival(i).map(f64::to_bits),
                "seed={seed} warm-vs-cold node={i:?}"
            );
        }
        for s in cache.last_stats() {
            // Acyclic cases reuse everything on an identical re-run;
            // cyclic cases (all-active view of latched logic) recompute.
            assert!(
                s.recomputed == 0 || s.recomputed == s.nodes,
                "seed={seed} case={:?}: partial recompute {} of {} on identical input",
                s.case,
                s.recomputed,
                s.nodes
            );
        }
    }
}
