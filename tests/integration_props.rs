//! Property-based tests over the core data structures and invariants,
//! using `proptest` to generate random RC trees, netlists, and clock
//! schemes.

use nmos_tv::core::{AnalysisOptions, Analyzer};
use nmos_tv::flow::{analyze, Direction, DeviceRole, RuleSet};
use nmos_tv::gen::random::{random_logic, RandomMix};
use nmos_tv::netlist::{sim_format, Tech};
use nmos_tv::rc::bounds::crossing_bounds_all;
use nmos_tv::rc::elmore::{crossing_estimate, elmore_delays};
use nmos_tv::rc::lumped::lumped_tau;
use nmos_tv::rc::passchain::{buffered_chain_delay, chain_elmore};
use nmos_tv::rc::tree::RcTree;
use proptest::prelude::*;

/// A random RC tree described by (parent index into previous nodes, r, c)
/// triples; node 0 is the root.
fn arb_rc_tree() -> impl Strategy<Value = RcTree> {
    let edge = (0.01f64..50.0, 0.0005f64..2.0);
    (0.01f64..50.0, 0.0005f64..2.0, prop::collection::vec(edge, 0..24)).prop_map(
        |(driver_r, root_c, edges)| {
            let mut tree = RcTree::new(driver_r);
            tree.add_cap(tree.root(), root_c);
            let mut ids = vec![tree.root()];
            for (i, (r, c)) in edges.into_iter().enumerate() {
                // Deterministic, varied parent selection over existing nodes.
                let parent = ids[(i * 7 + 3) % ids.len()];
                ids.push(tree.add_child(parent, r, c));
            }
            tree
        },
    )
}

proptest! {
    #[test]
    fn elmore_is_monotone_along_every_path(tree in arb_rc_tree()) {
        let d = elmore_delays(&tree);
        for id in tree.ids() {
            if let Some(p) = tree.parent(id) {
                prop_assert!(d[id.index()] >= d[p.index()] - 1e-12);
            }
        }
    }

    #[test]
    fn bounds_bracket_single_pole_estimate(tree in arb_rc_tree(), x in 0.05f64..0.95) {
        let elmore = elmore_delays(&tree);
        for (i, b) in crossing_bounds_all(&tree, x).iter().enumerate() {
            let est = crossing_estimate(elmore[i], x);
            prop_assert!(b.lower <= est + 1e-9, "lower {} > est {}", b.lower, est);
            prop_assert!(est <= b.upper + 1e-9, "est {} > upper {}", est, b.upper);
        }
    }

    #[test]
    fn moment_matched_estimate_respects_certified_bounds(
        tree in arb_rc_tree(),
        x in 0.1f64..0.9,
    ) {
        use nmos_tv::rc::moments::moment_matched_crossings;
        let matched = moment_matched_crossings(&tree, x);
        for (i, b) in crossing_bounds_all(&tree, x).iter().enumerate() {
            prop_assert!(
                matched[i] <= b.upper + 1e-6,
                "matched {} above certified upper {}",
                matched[i],
                b.upper
            );
            prop_assert!(matched[i] >= 0.0);
        }
    }

    #[test]
    fn subtree_caps_conserve_total(tree in arb_rc_tree()) {
        let sub = tree.subtree_caps();
        let total: f64 = tree.ids().map(|i| tree.cap(i)).sum();
        prop_assert!((sub[0] - total).abs() < 1e-9);
        prop_assert!((tree.total_cap() - total).abs() < 1e-9);
    }

    #[test]
    fn lumped_never_exceeds_elmore_at_leaves(tree in arb_rc_tree()) {
        // Lumped tau (driver R × total C) is a lower bound on the Elmore
        // delay of the far end of any chain hanging off the driver.
        let d = elmore_delays(&tree);
        let worst = d.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(lumped_tau(&tree) <= worst + 1e-9);
    }

    #[test]
    fn chain_formula_matches_tree_everywhere(
        rd in 0.1f64..40.0,
        r in 0.1f64..40.0,
        c in 0.001f64..1.0,
        n in 1usize..20,
    ) {
        let mut tree = RcTree::new(rd);
        let mut last = tree.root();
        for _ in 0..n {
            last = tree.add_child(last, r, c);
        }
        let formula = chain_elmore(rd, r, c, n);
        let direct = elmore_delays(&tree)[last.index()];
        prop_assert!((formula - direct).abs() < 1e-6 * formula.max(1.0));
    }

    #[test]
    fn buffering_never_loses_to_raw_on_long_chains(
        r in 1.0f64..40.0,
        c in 0.01f64..0.5,
        t_buf in 0.1f64..5.0,
    ) {
        // At the optimal interval, a 64-section buffered chain never loses
        // to the raw quadratic chain.
        let k = nmos_tv::rc::passchain::optimal_buffer_interval(r, c, t_buf);
        let raw = chain_elmore(0.0, r, c, 64);
        let buffered = buffered_chain_delay(0.0, r, c, t_buf, 64, k);
        prop_assert!(buffered <= raw + 1e-9);
    }

    #[test]
    fn random_netlists_analyze_cleanly(seed in 0u64..500, size in 50usize..400) {
        let circuit = random_logic(Tech::nmos4um(), size, seed, RandomMix::default());
        let nl = &circuit.netlist;

        // Flow invariants: every pass device gets exactly one disposition.
        let flow = analyze(nl, &RuleSet::all());
        let report = flow.report(nl);
        prop_assert_eq!(
            report.oriented + report.bidirectional + report.unresolved,
            report.pass_devices
        );
        prop_assert_eq!(
            report.by_external + report.by_restored + report.by_chain + report.by_sink,
            report.oriented
        );

        // Oriented directions point at actual channel terminals.
        for dref in nl.devices() {
            if let Direction::Toward(dst) = flow.direction(dref.id) {
                prop_assert!(dref.device.channel_touches(dst));
            }
            if flow.device_role(dref.id) != DeviceRole::Pass {
                prop_assert!(flow.direction(dref.id) != Direction::Unresolved
                    || flow.device_role(dref.id) == DeviceRole::Pass);
            }
        }

        // The analyzer terminates and arrivals are non-negative.
        let timing = Analyzer::new(nl).run(&AnalysisOptions::default());
        for id in nl.node_ids() {
            if let Some(t) = timing.combinational.arrival(id) {
                prop_assert!(t >= 0.0);
            }
        }
    }

    #[test]
    fn sim_format_round_trips_random_netlists(seed in 0u64..200) {
        let circuit = random_logic(Tech::nmos4um(), 150, seed, RandomMix::default());
        let text = sim_format::write(&circuit.netlist);
        let back = sim_format::parse(&text, Tech::nmos4um()).expect("parse");
        prop_assert_eq!(back.device_count(), circuit.netlist.device_count());
        prop_assert_eq!(back.node_count(), circuit.netlist.node_count());
        // Capacitance totals survive (gate/diffusion re-derived, extras kept).
        let c1 = circuit.netlist.total_capacitance();
        let c2 = back.total_capacitance();
        prop_assert!((c1 - c2).abs() < 1e-9 * c1.max(1.0));
    }

    #[test]
    fn two_phase_windows_partition_the_cycle(
        w1 in 0.5f64..50.0,
        w2 in 0.5f64..50.0,
        gap in 0.1f64..5.0,
    ) {
        let clk = nmos_tv::clocks::TwoPhaseClock::new(w1, w2, gap);
        let (s1, e1) = clk.window(0);
        let (s2, e2) = clk.window(1);
        prop_assert!(s1 < e1 && e1 <= s2 && s2 < e2 && e2 <= clk.cycle());
        prop_assert!((clk.cycle() - (w1 + w2 + 2.0 * gap)).abs() < 1e-9);
        // Scaling to a larger cycle preserves the ratio.
        let scaled = clk.with_cycle(clk.cycle() * 2.0);
        prop_assert!((scaled.width(0) / scaled.width(1) - w1 / w2).abs() < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Cross-engine validation: on random restoring logic (no pass muxes or
    // latches, so values are strictly determined), the switch-level and
    // analog simulators must agree at every node.
    #[test]
    fn switch_level_agrees_with_analog_on_random_logic(
        seed in 0u64..100,
        inputs_high in 0u32..256,
    ) {
        use nmos_tv::gen::random::{random_logic, RandomMix};
        use nmos_tv::sim::switch::{Level, SwitchSim};
        use nmos_tv::sim::{SimOptions, Simulator, Stimulus, Waveform};

        let mix = RandomMix {
            inverter: 0.5,
            nand: 0.3,
            nor: 0.2,
            pass_mux: 0.0,
            latch: 0.0,
        };
        let tech = Tech::nmos4um();
        let c = random_logic(tech.clone(), 60, seed, mix);
        let nl = &c.netlist;

        // Switch level.
        let mut sw = SwitchSim::new(nl);
        let input_nodes = nl.inputs();
        for (i, &n) in input_nodes.iter().enumerate() {
            let high = (inputs_high >> i) & 1 == 1;
            sw.set(n, if high { Level::One } else { Level::Zero });
        }
        for (clk, _) in nl.clocks() {
            sw.set(clk, Level::Zero);
        }
        sw.settle().expect("restoring logic settles");

        // Analog, same input vector, settled DC.
        let mut stim = Stimulus::new(nl);
        for (i, &n) in input_nodes.iter().enumerate() {
            let high = (inputs_high >> i) & 1 == 1;
            stim.drive(n, Waveform::Const(if high { tech.vdd } else { 0.0 }));
        }
        // Clock node exists but gates nothing in this mix; hold it low.
        for (clk, _) in nl.clocks() {
            stim.drive(clk, Waveform::Const(0.0));
        }
        let mut opts = SimOptions::for_duration(1.0);
        opts.settle = 400.0;
        let r = Simulator::new(nl, stim, opts).run();

        let flow = analyze(nl, &RuleSet::all());
        for id in nl.node_ids() {
            if nl.node(id).role().is_rail() {
                continue;
            }
            let v = r.final_voltages()[id.index()];
            let analog = if v > tech.switch_voltage() { Level::One } else { Level::Zero };
            match sw.value(id) {
                // X is legitimate only on isolated interior nodes (e.g.
                // the series node of a NAND whose legs are all off); a
                // restored stage output must always resolve and agree.
                Level::X => prop_assert_ne!(
                    flow.node_class(id),
                    nmos_tv::flow::NodeClass::Restored,
                    "restored node {} is X",
                    nl.node(id).name()
                ),
                switchv => prop_assert_eq!(
                    switchv,
                    analog,
                    "node {} (analog {} V)",
                    nl.node(id).name(),
                    v
                ),
            }
        }
    }

    // The simulator is expensive; a handful of random cases suffices to
    // guard the static-conservatism contract.
    #[test]
    fn static_estimate_not_wildly_optimistic_on_random_inverter_trees(
        stages in 2usize..5,
        fanout in 1usize..3,
    ) {
        use nmos_tv::gen::chains::inverter_chain;
        use nmos_tv::sim::{measure, SimOptions, Simulator, Stimulus, Waveform};
        let tech = Tech::nmos4um();
        let c = inverter_chain(tech.clone(), 2 * stages, fanout);
        let report = Analyzer::new(&c.netlist).run(&AnalysisOptions::default());
        let est = report.combinational.arrivals.rise(c.output).expect("rises");

        let mut stim = Stimulus::new(&c.netlist);
        stim.drive(c.input, Waveform::step_up(1.0, tech.vdd));
        let r = Simulator::new(&c.netlist, stim, SimOptions::for_duration(60.0)).run();
        let sim = measure::delay_50(&r, c.input, c.output, &tech).expect("switches");
        prop_assert!(est >= 0.9 * sim, "estimate {} vs sim {}", est, sim);
        prop_assert!(est <= 2.0 * sim, "estimate {} vs sim {}", est, sim);
    }
}
