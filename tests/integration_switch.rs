//! Functional verification of the circuit generators with the
//! switch-level simulator: the generated netlists must *compute*, not
//! just elaborate. (The analog engine cross-checks a subset of this in
//! `examples/functional_sim.rs`; switch level is fast enough to be
//! exhaustive here.)

use nmos_tv::gen::manchester::manchester_adder;
use nmos_tv::gen::regfile::register_file;
use nmos_tv::gen::shifter::barrel_shifter;
use nmos_tv::netlist::{Netlist, NodeId, Tech};
use nmos_tv::sim::switch::{Level, SwitchSim};

fn level(bit: bool) -> Level {
    if bit {
        Level::One
    } else {
        Level::Zero
    }
}

fn node(nl: &Netlist, name: &str) -> NodeId {
    nl.node_by_name(name)
        .unwrap_or_else(|| panic!("node {name}"))
}

#[test]
fn manchester_adder_adds_exhaustively_at_switch_level() {
    let width = 4;
    let m = manchester_adder(Tech::nmos4um(), width, 0);
    let nl = &m.netlist;
    let mut sim = SwitchSim::new(nl);

    for a_val in 0..(1u32 << width) {
        for b_val in 0..(1u32 << width) {
            for cin in 0..2u32 {
                for i in 0..width {
                    sim.set(node(nl, &format!("a{i}")), level((a_val >> i) & 1 == 1));
                    sim.set(node(nl, &format!("b{i}")), level((b_val >> i) & 1 == 1));
                }
                // Chain entry pin is active-low carry-in.
                sim.set(node(nl, "cin"), level(cin == 0));

                // Precharge phase.
                sim.set(m.phi1, Level::Zero);
                sim.set(m.phi2, Level::One);
                sim.settle().expect("precharge settles");
                // Evaluate phase.
                sim.set(m.phi2, Level::Zero);
                sim.set(m.phi1, Level::One);
                sim.settle().expect("evaluation settles");

                let mut got = 0u32;
                for (i, &s) in m.sums.iter().enumerate() {
                    match sim.value(s) {
                        Level::One => got |= 1 << i,
                        Level::Zero => {}
                        Level::X => panic!("sum bit {i} is X for {a_val}+{b_val}+{cin}"),
                    }
                }
                let expect = (a_val + b_val + cin) & ((1 << width) - 1);
                assert_eq!(
                    got, expect,
                    "{a_val:04b} + {b_val:04b} + {cin} gave {got:04b}, want {expect:04b}"
                );
            }
        }
    }
}

#[test]
fn barrel_shifter_routes_each_amount() {
    let (width, amounts) = (8usize, 4usize);
    let c = barrel_shifter(Tech::nmos4um(), width, amounts);
    let nl = &c.netlist;
    let mut sim = SwitchSim::new(nl);

    // A recognizable pattern.
    let pattern = 0b1011_0010u32;
    for i in 0..width {
        sim.set(node(nl, &format!("in{i}")), level((pattern >> i) & 1 == 1));
    }
    for s in 0..amounts {
        // One-hot select.
        for k in 0..amounts {
            sim.set(node(nl, &format!("sh{k}")), level(k == s));
        }
        sim.settle().expect("shifter settles");
        for j in 0..width {
            // The data plane is inverted once by the drivers and once by
            // the receivers: q_j = in_{(j+s) mod width}.
            let expect = (pattern >> ((j + s) % width)) & 1 == 1;
            let got = sim.value(node(nl, &format!("q{j}")));
            assert_eq!(got, level(expect), "shift {s}, output bit {j}: got {got:?}");
        }
    }
}

#[test]
fn register_file_writes_and_reads_back() {
    let (regs, width) = (2usize, 4usize);
    let c = register_file(Tech::nmos4um(), regs, width);
    let nl = &c.netlist;
    let mut sim = SwitchSim::new(nl);
    let phi1 = node(nl, "phi1");
    let phi2 = node(nl, "phi2");

    let value = 0b1010u32;
    // Drive write data; enable register 1; others quiet.
    for i in 0..width {
        sim.set(node(nl, &format!("w{i}")), level((value >> i) & 1 == 1));
    }
    sim.set(node(nl, "we0"), Level::Zero);
    sim.set(node(nl, "we1"), Level::One);
    for r in 0..regs {
        sim.set(node(nl, &format!("rd{r}")), Level::Zero);
    }

    // φ1: the qualified write clock samples into register 1's masters.
    sim.set(phi2, Level::Zero);
    sim.set(phi1, Level::One);
    sim.settle().expect("write phase settles");
    // φ2: master → slave.
    sim.set(phi1, Level::Zero);
    sim.set(phi2, Level::One);
    sim.settle().expect("transfer phase settles");

    // Read register 1 onto the bus (clocks idle — reads are unclocked).
    sim.set(phi2, Level::Zero);
    sim.set(node(nl, "rd1"), Level::One);
    sim.settle().expect("read settles");

    for i in 0..width {
        // Two latch inversions cancel; the bus receiver inverts once:
        // q_i = NOT stored = NOT w_i… trace the polarity from structure:
        // master stores w̅ on its mem, restores to w at q… each dynamic
        // latch inverts once (pass + inverter), so after master+slave the
        // stored q equals w; the bus receiver inverts: out = w̅.
        let got = sim.value(node(nl, &format!("q{i}")));
        let expect = level((value >> i) & 1 == 0);
        assert_eq!(got, expect, "bit {i}: got {got:?}");
    }
}

#[test]
fn datapath_executes_a_full_register_transfer() {
    // Drive the complete loop of the MIPS-class datapath functionally:
    // an external operand goes through the ALU (NAND with the idle
    // all-ones bus A), through the shifter, over the writeback bus into
    // register 0; a later read puts the stored value back on bus A.
    use nmos_tv::gen::datapath::{datapath, DatapathConfig};
    let dp = datapath(Tech::nmos4um(), DatapathConfig::small());
    let nl = &dp.netlist;
    let width = dp.config.width;
    let mut sim = SwitchSim::new(nl);

    let ext_val = 0b0110u32;

    // Control setup: external operand onto bus B, NAND op, shift by 0,
    // write enable register 0, no reads yet.
    for i in 0..width {
        sim.set(dp.ext[i], level((ext_val >> i) & 1 == 1));
    }
    sim.set(node(nl, "use_ext"), Level::One);
    sim.set(node(nl, "op_add"), Level::Zero);
    sim.set(node(nl, "op_nand"), Level::One);
    sim.set(node(nl, "op_nor"), Level::Zero);
    sim.set(node(nl, "cin"), Level::Zero);
    sim.set(node(nl, "sh0"), Level::One);
    for s in 1..dp.config.shift_amounts {
        sim.set(node(nl, &format!("sh{s}")), Level::Zero);
    }
    sim.set(node(nl, "we0"), Level::One);
    for r in 1..dp.config.regs {
        sim.set(node(nl, &format!("we{r}")), Level::Zero);
    }
    for r in 0..dp.config.regs {
        sim.set(node(nl, &format!("rdA{r}")), Level::Zero);
        sim.set(node(nl, &format!("rdB{r}")), Level::Zero);
    }

    // φ2: precharge the buses.
    sim.set(dp.phi1, Level::Zero);
    sim.set(dp.phi2, Level::One);
    sim.settle().expect("precharge settles");

    // φ1: evaluate and write back. Bus A idles precharged-high (all
    // ones), so the ALU computes NAND(1, ext) = NOT ext per bit, and the
    // writeback lines carry that result into register 0's masters.
    sim.set(dp.phi2, Level::Zero);
    sim.set(dp.phi1, Level::One);
    sim.settle().expect("evaluation settles");
    for i in 0..width {
        let wb = sim.value(dp.writeback[i]);
        let expect = level((ext_val >> i) & 1 == 0); // NOT ext
        assert_eq!(wb, expect, "writeback bit {i}");
    }

    // φ2: master → slave; buses precharge again.
    sim.set(dp.phi1, Level::Zero);
    sim.set(dp.phi2, Level::One);
    sim.settle().expect("transfer settles");

    // Idle clocks, then read register 0 onto bus A and check the stored
    // value (two latch inversions cancel: q equals the written value).
    sim.set(dp.phi2, Level::Zero);
    sim.set(node(nl, "rdA0"), Level::One);
    sim.settle().expect("read settles");
    for i in 0..width {
        let bus = sim.value(node(nl, &format!("busA{i}")));
        let expect = level((ext_val >> i) & 1 == 0); // stored NOT ext
        assert_eq!(bus, expect, "bus A bit {i} after readback");
    }
}

#[test]
fn switch_and_analog_engines_agree_on_an_inverter_chain() {
    use nmos_tv::gen::chains::inverter_chain;
    use nmos_tv::sim::{SimOptions, Simulator, Stimulus, Waveform};

    let c = inverter_chain(Tech::nmos4um(), 3, 1);
    let nl = &c.netlist;

    // Switch level.
    let mut sw = SwitchSim::new(nl);
    sw.set(c.input, Level::One);
    sw.settle().unwrap();
    let sw_out = sw.value(c.output);

    // Analog.
    let tech = Tech::nmos4um();
    let mut stim = Stimulus::new(nl);
    stim.drive(c.input, Waveform::Const(tech.vdd));
    let r = Simulator::new(nl, stim, SimOptions::for_duration(10.0)).run();
    let v = r.final_voltages()[c.output.index()];
    let analog_out = if v > tech.switch_voltage() {
        Level::One
    } else {
        Level::Zero
    };

    assert_eq!(sw_out, analog_out);
    assert_eq!(sw_out, Level::Zero, "three inversions of 1");
}
