//! Session-mode equivalence and invalidation-precision suite.
//!
//! Three guarantees from the pass-pipeline design are pinned here:
//!
//! 1. **Invalidation precision** — edits invalidate only the passes
//!    whose declared inputs they touch: a capacitance edit cannot re-run
//!    flow resolution, a W/L resize cannot re-find latches.
//! 2. **Bit-identity** — a warm session re-analysis after any edit
//!    sequence produces a report whose golden FNV fingerprint equals a
//!    cold one-shot analysis of the same netlist, including after a
//!    `.sim` serialize/re-parse round trip.
//! 3. **Transcript stability** — the committed batch script replays to
//!    the committed golden transcript, byte for byte (also enforced by
//!    `scripts/verify.sh` against the installed binary).

use std::process::Command;

use nmos_tv::core::{
    report_fingerprint, AnalysisOptions, Analyzer, PassId, PassManager, PassOutcome,
};
use nmos_tv::gen::datapath::{datapath, DatapathConfig};
use nmos_tv::netlist::{sim_format, Design, DeviceId, DeviceKind, NodeId, Tech};
use nmos_tv::session::Session;

fn small_design() -> Design {
    let dp = datapath(Tech::nmos4um(), DatapathConfig::small());
    Design::new(dp.netlist)
}

/// Splitmix-style deterministic generator so the randomized loop is
/// reproducible without a rand dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn editable_nodes(design: &Design) -> Vec<NodeId> {
    design
        .netlist()
        .node_ids()
        .filter(|&i| !design.netlist().node(i).role().is_rail())
        .collect()
}

fn device_ids(design: &Design) -> Vec<DeviceId> {
    design.netlist().devices().map(|d| d.id).collect()
}

#[test]
fn cap_only_edits_never_rerun_flow() {
    let mut design = small_design();
    let mut pm = PassManager::new();
    let opts = AnalysisOptions::default();
    pm.analyze(&design, &opts);
    let flow_fp = pm.pass_fingerprint(PassId::Flow).unwrap();
    let qual_fp = pm.pass_fingerprint(PassId::Qualify).unwrap();

    let nodes = editable_nodes(&design);
    let mut rng = Lcg(0xfeed);
    for step in 0..8 {
        let node = nodes[rng.pick(nodes.len())];
        let pf = 0.01 + 0.01 * (step as f64);
        design.set_node_cap(node, pf).expect("cap edit");
        pm.analyze(&design, &opts);
        assert_eq!(
            trace_outcome(&pm, PassId::Flow),
            Some(PassOutcome::Reused),
            "cap edit #{step} re-ran flow"
        );
        assert_eq!(pm.pass_fingerprint(PassId::Flow), Some(flow_fp));
        assert_eq!(pm.pass_fingerprint(PassId::Qualify), Some(qual_fp));
    }
}

#[test]
fn wl_only_edits_never_refind_latches() {
    let mut design = small_design();
    let mut pm = PassManager::new();
    let opts = AnalysisOptions::default();
    let baseline = pm.analyze(&design, &opts);
    let latch_fp = pm.pass_fingerprint(PassId::Latches).unwrap();
    assert!(!baseline.latches.is_empty(), "datapath has latches");

    let devs = device_ids(&design);
    let mut rng = Lcg(0xbeef);
    for step in 0..8 {
        let dev = devs[rng.pick(devs.len())];
        let w = 3.0 + (step % 4) as f64;
        design.resize_device(dev, w, 2.0).expect("resize");
        let report = pm.analyze(&design, &opts);
        assert_eq!(
            trace_outcome(&pm, PassId::Latches),
            Some(PassOutcome::Reused),
            "W/L edit #{step} re-found latches"
        );
        assert_eq!(pm.pass_fingerprint(PassId::Latches), Some(latch_fp));
        assert_eq!(report.latches.len(), baseline.latches.len());
    }
}

#[test]
fn random_edit_session_bit_identical_to_oneshot() {
    let mut design = small_design();
    let mut pm = PassManager::new();
    let opts = AnalysisOptions::default();
    pm.analyze(&design, &opts);

    let nodes = editable_nodes(&design);
    let mut rng = Lcg(0x5eed);
    for step in 0..16 {
        let devs = device_ids(&design);
        match step % 5 {
            // Parametric: resize a random device.
            0 | 2 => {
                let dev = devs[rng.pick(devs.len())];
                let w = 3.0 + (rng.pick(5) as f64);
                design.resize_device(dev, w, 2.0).expect("resize");
            }
            // Parametric: retune a random wiring cap.
            1 | 3 => {
                let node = nodes[rng.pick(nodes.len())];
                let pf = 0.02 + 0.005 * (rng.pick(8) as f64);
                design.set_node_cap(node, pf).expect("setcap");
            }
            // Structural: add a parallel device, sometimes remove it.
            _ => {
                let probe = devs[rng.pick(devs.len())];
                let (g, s, d) = {
                    let dv = design.netlist().device(probe);
                    (dv.gate(), dv.source(), dv.drain())
                };
                let (id, _) = design
                    .add_device(
                        &format!("sess_t{step}"),
                        DeviceKind::Enhancement,
                        g,
                        s,
                        d,
                        4.0,
                        2.0,
                    )
                    .expect("adddev");
                if rng.pick(2) == 0 {
                    design.remove_device(id);
                }
            }
        }
        let warm = pm.analyze(&design, &opts);
        let cold = Analyzer::new(design.netlist()).run(&opts);
        assert_eq!(
            report_fingerprint(design.netlist(), &warm),
            report_fingerprint(design.netlist(), &cold),
            "edit #{step}: warm session report diverged from cold analysis"
        );
    }
}

#[test]
fn edited_session_matches_fresh_parse_and_analyze() {
    // Edit in a session, serialize the edited netlist to `.sim`, parse
    // it back, and check two things: (a) on the re-parsed netlist a
    // session pipeline and a cold one-shot run are bit-identical, and
    // (b) the analysis figures survive the serialization round trip.
    // (The golden fingerprint itself hashes node order, which `.sim`
    // serialization permutes, so (a) compares within the re-parsed
    // netlist rather than across the round trip.)
    let mut design = small_design();
    let mut pm = PassManager::new();
    let opts = AnalysisOptions::default();
    pm.analyze(&design, &opts);

    let dev = device_ids(&design)[3];
    design.resize_device(dev, 7.0, 2.0).expect("resize");
    let node = *design.netlist().outputs().first().expect("an output");
    design.set_node_cap(node, 0.09).expect("setcap");
    let warm = pm.analyze(&design, &opts);

    let text = sim_format::write(design.netlist());
    let reparsed = sim_format::parse(&text, Tech::nmos4um()).expect("round-trip parse");
    let cold = Analyzer::new(&reparsed).run(&opts);

    let mut fresh_design = Design::new(reparsed.clone());
    let mut fresh_pm = PassManager::new();
    let fresh = fresh_pm.analyze(&fresh_design, &opts);
    assert_eq!(
        report_fingerprint(&reparsed, &fresh),
        report_fingerprint(&reparsed, &cold),
        "pipeline diverged from one-shot on the re-parsed netlist"
    );
    // A follow-up edit on the fresh session stays identical too.
    let dev2 = device_ids(&fresh_design)[5];
    fresh_design.resize_device(dev2, 5.0, 2.0).expect("resize");
    let fresh2 = fresh_pm.analyze(&fresh_design, &opts);
    let cold2 = Analyzer::new(fresh_design.netlist()).run(&opts);
    assert_eq!(
        report_fingerprint(fresh_design.netlist(), &fresh2),
        report_fingerprint(fresh_design.netlist(), &cold2)
    );

    assert_eq!(warm.latches.len(), cold.latches.len());
    assert_eq!(warm.checks.len(), cold.checks.len());
    assert_eq!(
        warm.min_cycle.map(f64::to_bits),
        cold.min_cycle.map(f64::to_bits),
        "min-cycle figure diverged across the .sim round trip"
    );
}

#[test]
fn session_protocol_reports_cold_fingerprint() {
    // Drive the string protocol itself: the fingerprint in an `analyze`
    // reply is the golden FNV of a cold run on the same netlist.
    let mut session = Session::new(AnalysisOptions::default(), 20);
    let (reply, ok) = session.eval("demo small").expect("reply");
    assert!(ok, "demo failed: {reply}");

    let dev_name = session
        .design()
        .unwrap()
        .netlist()
        .devices()
        .nth(10)
        .unwrap()
        .device
        .name()
        .to_string();
    let (reply, ok) = session
        .eval(&format!("edit resize {dev_name} 6 2"))
        .expect("reply");
    assert!(ok, "edit failed: {reply}");

    let (reply, ok) = session.eval("analyze").expect("reply");
    assert!(ok, "analyze failed: {reply}");
    let fp_hex = reply
        .split(r#""fingerprint":"0x"#)
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("fingerprint field");
    let session_fp = u64::from_str_radix(fp_hex, 16).expect("hex fingerprint");

    let nl = session.design().unwrap().netlist();
    let cold = Analyzer::new(nl).run(&AnalysisOptions::default());
    assert_eq!(session_fp, report_fingerprint(nl, &cold));
}

#[test]
fn repeated_analyze_replies_are_byte_identical() {
    let mut session = Session::new(AnalysisOptions::default(), 20);
    session.eval("demo small").expect("reply");
    let (first, ok) = session.eval("analyze").expect("reply");
    assert!(ok);
    let (second, _) = session.eval("analyze").expect("reply");
    // Pass outcomes differ (computed vs reused) but everything the
    // result depends on — revision, fingerprint, figures — must not.
    let strip = |s: &str| s.split(r#","passes":"#).next().unwrap().to_string();
    assert_eq!(strip(&first), strip(&second));
    assert!(second.contains(r#""pass":"flow","outcome":"reused""#));
}

#[test]
fn batch_script_replays_to_golden_transcript() {
    let root = env!("CARGO_MANIFEST_DIR");
    let script = format!("{root}/tests/data/session_smoke.txt");
    let golden = format!("{root}/tests/data/session_smoke.golden");
    let out = Command::new(env!("CARGO_BIN_EXE_tv"))
        .args(["batch", &script])
        .output()
        .expect("tv batch runs");
    assert!(
        out.status.success(),
        "tv batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = std::fs::read_to_string(&golden).expect("golden transcript");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        expected,
        "batch transcript diverged from {golden}"
    );
}

/// Writes `contents` to a self-cleaning temp script file.
struct TempScript(std::path::PathBuf);

impl TempScript {
    fn new(contents: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "tv-batch-test-{}-{}.txt",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        std::fs::write(&path, contents).expect("write temp script");
        TempScript(path)
    }
}

impl Drop for TempScript {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// An empty batch script is a successful no-op: no replies, exit 0.
#[test]
fn batch_empty_script_exits_clean_with_no_output() {
    let script = TempScript::new("");
    let out = Command::new(env!("CARGO_BIN_EXE_tv"))
        .arg("batch")
        .arg(&script.0)
        .output()
        .expect("tv batch runs");
    assert_eq!(out.status.code(), Some(0));
    assert!(
        out.stdout.is_empty(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// A script whose final line has no trailing newline still executes
/// that line — a truncated-by-one-byte script must not silently drop
/// its last command.
#[test]
fn batch_missing_trailing_newline_runs_final_command() {
    let script = TempScript::new("demo small\nrevision");
    let out = Command::new(env!("CARGO_BIN_EXE_tv"))
        .arg("batch")
        .arg(&script.0)
        .output()
        .expect("tv batch runs");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    assert!(
        lines[1].contains(r#""cmd":"revision""#),
        "final unterminated command was dropped: {text}"
    );
}

fn trace_outcome(pm: &PassManager, pass: PassId) -> Option<PassOutcome> {
    pm.last_trace()
        .iter()
        .find(|e| e.pass == pass)
        .map(|e| e.outcome)
}
