//! Demand-driven cone propagation suite.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Shape-mismatch safety** — an edit that changes the netlist's
//!    node count (`addnode` + `adddev`) defeats the graph splice, so the
//!    rebuilt graph carries no `since` certificate: the arrival passes
//!    run the full engine (never the cone against a stale snapshot) and
//!    the rebuilt fingerprints match a cold run exactly.
//! 2. **Bit-identity under randomized edits** — for arbitrary edit
//!    sequences, the cone engine's arrivals, predecessor records, and
//!    golden report fingerprints equal the full walk's at `--jobs`
//!    1/2/8, and the cone's relaxation work never exceeds the full
//!    walk's.
//!
//! The counter plane is process-global, so the one test that reads it
//! serializes behind `OBS_LOCK` and every other test in this binary
//! takes the same lock.

use std::path::Path;
use std::process::Command;
use std::sync::Mutex;

use nmos_tv::core::{
    report_fingerprint, AnalysisOptions, Analyzer, CaseEngine, PassId, PassManager, PassOutcome,
};
use nmos_tv::gen::datapath::{datapath, DatapathConfig};
use nmos_tv::gen::rng::Rng64;
use nmos_tv::netlist::{Design, DeviceId, DeviceKind, NodeId, NodeRole, Tech};
use nmos_tv::obs::Counter;

/// Serializes counter-reading tests against everything else in this
/// binary (the counters are process-global atomics).
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn small_design() -> Design {
    let dp = datapath(Tech::nmos4um(), DatapathConfig::small());
    Design::new(dp.netlist)
}

fn editable_nodes(design: &Design) -> Vec<NodeId> {
    design
        .netlist()
        .node_ids()
        .filter(|&i| !design.netlist().node(i).role().is_rail())
        .collect()
}

fn device_ids(design: &Design) -> Vec<DeviceId> {
    design.netlist().devices().map(|d| d.id).collect()
}

fn trace_outcome(pm: &PassManager, pass: PassId) -> Option<PassOutcome> {
    pm.last_trace()
        .iter()
        .find(|e| e.pass == pass)
        .map(|e| e.outcome)
}

#[test]
fn mid_splice_shape_mismatch_rebuilds_and_matches_cold() {
    let _guard = OBS_LOCK.lock().unwrap();
    let mut design = small_design();
    let mut pm = PassManager::new();
    let opts = AnalysisOptions::default();
    pm.analyze(&design, &opts);

    // Prime the warm path: a parametric resize takes the cone engine.
    let dev = device_ids(&design)[7];
    design.resize_device(dev, 6.0, 2.0).expect("resize");
    pm.analyze(&design, &opts);
    assert!(
        pm.cache_stats()
            .iter()
            .any(|s| s.engine == CaseEngine::Cone),
        "resize edit did not take the cone engine"
    );

    // Now a shape-changing edit: a new node plus a device driving it.
    // The node count changes mid-splice, so the graph pass must rebuild
    // from scratch and hand the cache *no* `since` certificate — the
    // stale snapshot's preds are indexed against the old arc lists.
    let (new_node, _) = design.add_node("cone_probe", NodeRole::Internal);
    let gate = editable_nodes(&design)[5];
    design
        .add_device(
            "cone_probe_dev",
            DeviceKind::Enhancement,
            gate,
            new_node,
            design.netlist().node_by_name("GND").expect("GND rail"),
            4.0,
            2.0,
        )
        .expect("adddev");
    let warm = pm.analyze(&design, &opts);

    // Graph passes rebuilt, and no arrival pass ran the cone.
    for p in [
        PassId::Graph(None),
        PassId::Graph(Some(0)),
        PassId::Graph(Some(1)),
    ] {
        assert_eq!(
            trace_outcome(&pm, p),
            Some(PassOutcome::Computed),
            "{}: shape change must force a rebuild",
            p.name()
        );
    }
    for s in pm.cache_stats() {
        assert_eq!(
            s.engine,
            CaseEngine::Full,
            "stale certificate reached the cone engine after a shape change"
        );
    }

    // The rebuilt graph fingerprints and the report match a cold run.
    let cold = Analyzer::new(design.netlist()).run(&opts);
    assert_eq!(
        report_fingerprint(design.netlist(), &warm),
        report_fingerprint(design.netlist(), &cold),
        "report diverged from cold analysis after the rebuild"
    );
    let mut cold_pm = PassManager::new();
    cold_pm.analyze(&design, &opts);
    for p in [
        PassId::Graph(None),
        PassId::Graph(Some(0)),
        PassId::Graph(Some(1)),
    ] {
        assert_eq!(
            pm.pass_fingerprint(p),
            cold_pm.pass_fingerprint(p),
            "{}: rebuilt graph fingerprint differs from a cold pipeline",
            p.name()
        );
    }

    // And the cache re-primes: the next parametric edit cones again,
    // still bit-identical to cold.
    design.resize_device(dev, 5.0, 2.0).expect("resize");
    let warm2 = pm.analyze(&design, &opts);
    assert!(
        pm.cache_stats()
            .iter()
            .any(|s| s.engine == CaseEngine::Cone),
        "cache did not re-prime after the rebuild"
    );
    let cold2 = Analyzer::new(design.netlist()).run(&opts);
    assert_eq!(
        report_fingerprint(design.netlist(), &warm2),
        report_fingerprint(design.netlist(), &cold2)
    );
}

#[test]
fn random_edits_cone_bit_identical_to_full_walk_across_jobs() {
    let _guard = OBS_LOCK.lock().unwrap();
    nmos_tv::obs::counters::set_enabled(true);

    // Three pipelines over three lockstep copies of the design, one per
    // worker count; every iteration applies the same random edit to all
    // three and checks each warm report against a cold one-shot run.
    const JOBS: [usize; 3] = [1, 2, 8];
    let mut designs: Vec<Design> = (0..JOBS.len()).map(|_| small_design()).collect();
    let mut pms: Vec<PassManager> = (0..JOBS.len()).map(|_| PassManager::new()).collect();
    let opts_for = |jobs: usize| AnalysisOptions {
        jobs,
        ..AnalysisOptions::default()
    };
    for (k, jobs) in JOBS.iter().enumerate() {
        pms[k].analyze(&designs[k], &opts_for(*jobs));
    }

    let mut rng = Rng64::new(0xC0DE_CAFE);
    let mut cone_runs = 0usize;
    for step in 0..200 {
        // One random edit, replicated across the lockstep designs.
        let devs = device_ids(&designs[0]);
        let nodes = editable_nodes(&designs[0]);
        match rng.usize_range(0, 4) {
            0 => {
                let di = rng.usize_range(0, devs.len());
                let w = rng.f64_range(3.0, 8.0);
                for d in &mut designs {
                    d.resize_device(devs[di], w, 2.0).expect("resize");
                }
            }
            1 => {
                let ni = rng.usize_range(0, nodes.len());
                let pf = rng.f64_range(0.01, 0.08);
                for d in &mut designs {
                    d.set_node_cap(nodes[ni], pf).expect("setcap");
                }
            }
            2 => {
                let di = rng.usize_range(0, devs.len());
                let (g, s, dr) = {
                    let dv = designs[0].netlist().device(devs[di]);
                    (dv.gate(), dv.source(), dv.drain())
                };
                let keep = rng.bool(0.5);
                for d in &mut designs {
                    let (id, _) = d
                        .add_device(
                            &format!("cone_t{step}"),
                            DeviceKind::Enhancement,
                            g,
                            s,
                            dr,
                            4.0,
                            2.0,
                        )
                        .expect("adddev");
                    if !keep {
                        d.remove_device(id);
                    }
                }
            }
            _ => {
                let ni = rng.usize_range(0, nodes.len());
                let pf = rng.f64_range(0.02, 0.05);
                for d in &mut designs {
                    d.set_node_cap(nodes[ni], pf).expect("setcap");
                }
            }
        }

        // Warm analyses at every worker count, plus the jobs-1 cone work
        // measured against a cold full walk of the same netlist.
        let before = nmos_tv::obs::snapshot();
        let warm0 = pms[0].analyze(&designs[0], &opts_for(JOBS[0]));
        let after_warm = nmos_tv::obs::snapshot();
        let fp0 = report_fingerprint(designs[0].netlist(), &warm0);
        cone_runs += pms[0]
            .cache_stats()
            .iter()
            .filter(|s| s.engine == CaseEngine::Cone)
            .count();

        let cold = Analyzer::new(designs[0].netlist()).run(&opts_for(1));
        let after_cold = nmos_tv::obs::snapshot();
        assert_eq!(
            fp0,
            report_fingerprint(designs[0].netlist(), &cold),
            "edit #{step}: warm jobs-1 report diverged from cold analysis"
        );
        let warm_relax = after_warm.since(&before).get(Counter::PropagateRelaxations);
        let cold_relax = after_cold
            .since(&after_warm)
            .get(Counter::PropagateRelaxations);
        assert!(
            warm_relax <= cold_relax,
            "edit #{step}: cone did more relaxation work ({warm_relax}) than the full walk ({cold_relax})"
        );

        for (k, jobs) in JOBS.iter().enumerate().skip(1) {
            let warm = pms[k].analyze(&designs[k], &opts_for(*jobs));
            assert_eq!(
                fp0,
                report_fingerprint(designs[k].netlist(), &warm),
                "edit #{step}: jobs {jobs} diverged from jobs 1"
            );
        }
    }
    assert!(
        cone_runs > 0,
        "200 random edits never exercised the cone engine"
    );
}

#[test]
fn cone_smoke_replays_to_golden_and_saves_ninety_percent() {
    // The committed MIPS-class transcript is the acceptance evidence: a
    // warm single-resize re-analysis performs under 10% of the cold
    // run's relaxations, bit-identically at every worker count.
    let _guard = OBS_LOCK.lock().unwrap();
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    let golden = std::fs::read_to_string(dir.join("cone_smoke.golden")).expect("read golden");
    for jobs in [1, 2, 8] {
        let out = Command::new(env!("CARGO_BIN_EXE_tv"))
            .arg("batch")
            .arg(dir.join("cone_smoke.txt"))
            .args(["--jobs", &jobs.to_string()])
            .output()
            .expect("run tv batch");
        assert!(
            out.status.success(),
            "batch failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            golden,
            String::from_utf8_lossy(&out.stdout),
            "cone smoke replay differs from committed golden at --jobs {jobs}"
        );
    }
    // Re-derive the acceptance figure from the golden itself, so the
    // transcript can't silently rot into a weaker claim.
    let relax: Vec<u64> = golden
        .lines()
        .filter(|l| l.contains("\"cmd\":\"metrics\""))
        .map(|l| {
            let key = "\"propagate.relaxations\":";
            let at = l.find(key).expect("relaxations counter") + key.len();
            l[at..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .expect("numeric counter")
        })
        .collect();
    assert_eq!(relax.len(), 2, "expected cold and warm metrics marks");
    assert!(
        relax[1] * 10 < relax[0],
        "warm resize did {} relaxations, not under 10% of cold {}",
        relax[1],
        relax[0]
    );
}
