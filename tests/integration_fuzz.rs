//! The offline fuzz gate: 500 deterministic mutation iterations through
//! the full ingest-and-analysis pipeline must complete with zero panics
//! and zero silent rejections.

use std::process::Command;

#[test]
fn fuzz_500_iterations_is_clean_and_deterministic() {
    let r = nmos_tv::fuzz::run(500, 0x7001);
    assert!(r.is_clean(), "{r}");
    assert_eq!(r.iterations, 500);
    assert_eq!(r.analyzed + r.rejected, 500);
    assert!(r.diagnostics > 0, "mutation should produce diagnostics");

    // Replaying the same seed reproduces the same counters exactly.
    let again = nmos_tv::fuzz::run(500, 0x7001);
    assert_eq!(r.analyzed, again.analyzed);
    assert_eq!(r.rejected, again.rejected);
    assert_eq!(r.diagnostics, again.diagnostics);
}

#[test]
fn fuzz_subcommand_reports_and_exits_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_tv"))
        .args(["fuzz", "--iters", "50", "--seed", "42"])
        .output()
        .expect("run tv fuzz");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("50 iterations"), "{text}");
    assert!(text.contains("no panics"), "{text}");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn fuzz_subcommand_rejects_bad_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_tv"))
        .args(["fuzz", "--iters", "many"])
        .output()
        .expect("run tv fuzz");
    assert_eq!(out.status.code(), Some(2));
}
