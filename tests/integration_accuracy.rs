//! Static-vs-simulated accuracy: the T1 contract, verified in CI on a
//! fast subset. The full table lives in the `report` binary.

use nmos_tv::core::{AnalysisOptions, Analyzer};
use nmos_tv::gen::chains;
use nmos_tv::netlist::Tech;
use nmos_tv::rc::bounds::crossing_bounds;
use nmos_tv::rc::tree::RcTree;
use nmos_tv::sim::{measure, SimOptions, Simulator, Stimulus, Waveform};

/// Static rise-arrival at the output vs measured 50% delay on an
/// input-rising transfer.
fn static_vs_sim(circuit: &nmos_tv::gen::Circuit, falls: bool) -> (f64, f64) {
    let tech = Tech::nmos4um();
    let nl = &circuit.netlist;
    let report = Analyzer::new(nl).run(&AnalysisOptions::default());
    let est = if falls {
        report.combinational.arrivals.fall(circuit.output)
    } else {
        report.combinational.arrivals.rise(circuit.output)
    }
    .expect("reachable");

    let mut stim = Stimulus::new(nl);
    stim.drive(circuit.input, Waveform::step_up(1.0, tech.vdd));
    if let Some(en) = nl.node_by_name("en") {
        stim.drive(en, Waveform::Const(tech.vdd));
    }
    let result = Simulator::new(nl, stim, SimOptions::for_duration(60.0)).run();
    let sim =
        measure::delay_50(&result, circuit.input, circuit.output, &tech).expect("output switches");
    (est, sim)
}

#[test]
fn inverter_chain_estimate_is_conservative_and_tight() {
    let c = chains::inverter_chain(Tech::nmos4um(), 4, 1);
    let (est, sim) = static_vs_sim(&c, false);
    let ratio = est / sim;
    assert!(
        (1.0..1.5).contains(&ratio),
        "estimate {est} vs sim {sim} (ratio {ratio})"
    );
}

#[test]
fn loaded_inverter_estimate_matches_closely() {
    let c = chains::loaded_inverter(Tech::nmos4um(), 0.2);
    let (est, sim) = static_vs_sim(&c, true);
    let ratio = est / sim;
    assert!(
        (0.9..1.25).contains(&ratio),
        "estimate {est} vs sim {sim} (ratio {ratio})"
    );
}

#[test]
fn pass_chain_estimate_is_conservative() {
    let c = chains::pass_chain(Tech::nmos4um(), 3);
    let (est, sim) = static_vs_sim(&c, false);
    assert!(
        est >= sim,
        "pass-chain estimate {est} must not be optimistic vs {sim}"
    );
    assert!(est < 4.0 * sim, "but not absurd: {est} vs {sim}");
}

#[test]
fn certified_bounds_bracket_simulated_single_stage() {
    // Build the RC picture of a loaded inverter's fall by hand and check
    // the certified bounds bracket the simulated crossing.
    let tech = Tech::nmos4um();
    let c = chains::loaded_inverter(tech.clone(), 0.3);
    let nl = &c.netlist;

    let mut stim = Stimulus::new(nl);
    stim.drive(c.input, Waveform::step_up(1.0, tech.vdd));
    let result = Simulator::new(nl, stim, SimOptions::for_duration(60.0)).run();
    let sim = measure::delay_50(&result, c.input, c.output, &tech).expect("falls");

    // Fall path: pull-down R with the full node capacitance. The shipped
    // technology resistances carry a deliberate ~8% conservatism margin
    // (see `Tech::nmos4um`), so strip it to recover the physically
    // calibrated resistance the bounds are certified for.
    let margin = 26.0 / 24.0;
    let r_pd = tech.channel_resistance(2.0 * tech.min_size(), tech.min_size()) / margin;
    let mut t = RcTree::new(r_pd);
    t.add_cap(t.root(), nl.node_cap(c.output));
    let b = crossing_bounds(&t, t.root(), 0.5);
    assert!(
        b.contains(sim),
        "simulated {sim} outside certified [{}, {}]",
        b.lower,
        b.upper
    );
}

#[test]
fn simulated_rise_fall_asymmetry_matches_static_prediction() {
    let tech = Tech::nmos4um();
    let c = chains::loaded_inverter(tech.clone(), 0.3);
    let nl = &c.netlist;

    // Static r/f prediction from arrivals.
    let report = Analyzer::new(nl).run(&AnalysisOptions::default());
    let static_rise = report.combinational.arrivals.rise(c.output).unwrap();
    let static_fall = report.combinational.arrivals.fall(c.output).unwrap();

    // Simulated r/f.
    let sim_fall = {
        let mut stim = Stimulus::new(nl);
        stim.drive(c.input, Waveform::step_up(1.0, tech.vdd));
        let r = Simulator::new(nl, stim, SimOptions::for_duration(60.0)).run();
        measure::delay_50(&r, c.input, c.output, &tech).unwrap()
    };
    let sim_rise = {
        let mut stim = Stimulus::new(nl);
        stim.drive(c.input, Waveform::step_down(1.0, tech.vdd));
        let r = Simulator::new(nl, stim, SimOptions::for_duration(60.0)).run();
        measure::delay_50(&r, c.input, c.output, &tech).unwrap()
    };

    let static_asym = static_rise / static_fall;
    let sim_asym = sim_rise / sim_fall;
    let err = (static_asym - sim_asym).abs() / sim_asym;
    assert!(
        err < 0.2,
        "asymmetry mismatch: static {static_asym:.2} vs sim {sim_asym:.2}"
    );
}
