//! Fault-injection and recovery suite.
//!
//! Exercises the `tv_fault` plane end to end: the in-process `tv chaos`
//! sweep against its committed golden, the `--faults` fuzz mode, and the
//! binary-level `--fault-seed` hook for the two sites only the CLI
//! crosses (`trace_write`, `metrics_write`).
//!
//! The fault plane is process-global, so every in-process test that
//! arms it serializes on [`plane_lock`]. Binary-level tests spawn their
//! own process and need no lock.

use std::io::Write as _;
use std::process::{Command, Stdio};
use std::sync::{Mutex, MutexGuard};

use nmos_tv::chaos::run_chaos;
use nmos_tv::core::AnalysisOptions;
use nmos_tv::fault::{FaultPlan, Site};

fn plane_lock() -> MutexGuard<'static, ()> {
    static M: Mutex<()> = Mutex::new(());
    M.lock().unwrap_or_else(|e| e.into_inner())
}

fn tv() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tv"))
}

fn temp_path(stem: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "tv-chaos-test-{}-{}-{stem}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos()
    ));
    p
}

/// The committed chaos golden is exactly what `tv chaos --seeds 64`
/// prints (scripts/verify.sh pins the release binary to the same file).
#[test]
fn chaos_sweep_matches_committed_golden() {
    let _g = plane_lock();
    let report = run_chaos(64, &AnalysisOptions::default()).expect("sweep runs");
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/chaos_smoke.golden"
    ))
    .expect("read chaos golden");
    assert_eq!(format!("{report}\n"), golden);
    assert!(report.is_clean(), "{report}");
}

/// Two sweeps of the same seed range must render identically — the
/// whole report is a pure function of (seeds, options).
#[test]
fn chaos_sweep_is_deterministic() {
    let _g = plane_lock();
    let a = run_chaos(8, &AnalysisOptions::default()).expect("sweep runs");
    let b = run_chaos(8, &AnalysisOptions::default()).expect("sweep runs");
    assert_eq!(a.to_string(), b.to_string());
}

/// The sweep's recovery paths hold at a parallel jobs setting too (the
/// worker-panic sites degrade chunked scoped threads, not just the
/// serial fast path).
#[test]
fn chaos_sweep_is_clean_with_parallel_workers() {
    let _g = plane_lock();
    let options = AnalysisOptions {
        jobs: 2,
        ..AnalysisOptions::default()
    };
    let report = run_chaos(12, &options).expect("sweep runs");
    assert!(report.is_clean(), "{report}");
}

/// `tv fuzz --faults` — random session scripts under seeded plans obey
/// the same contract.
#[test]
fn fault_fuzz_is_clean() {
    let _g = plane_lock();
    let report = nmos_tv::fuzz::run_faults(25, 0xFA17).expect("fuzz runs");
    assert!(report.is_clean(), "{report}");
    assert!(report.triggered > 0, "no plan ever fired: {report}");
}

/// Finds a seed whose plan is `site` on the first crossing.
fn seed_for(site: Site) -> u64 {
    (0..10_000u64)
        .find(|&s| FaultPlan::from_seed(s) == FaultPlan { site, after: 0 })
        .expect("10k seeds cover every (site, after=0) plan")
}

/// A session driven through the real binary with `--fault-seed` aimed at
/// the trace writer: the injected write failure is retried once, the
/// run stays clean, and the written trace still validates.
#[test]
fn binary_fault_seed_trace_write_recovers() {
    let trace = temp_path("trace.json");
    let seed = seed_for(Site::TraceWrite);
    let mut child = tv()
        .arg("session")
        .arg("--trace")
        .arg(&trace)
        .arg("--fault-seed")
        .arg(seed.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tv");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"demo small\nanalyze\nquit\n")
        .expect("feed session");
    let out = child.wait_with_output().expect("run tv");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let check = tv()
        .arg("trace-check")
        .arg(&trace)
        .output()
        .expect("run tv");
    assert_eq!(check.status.code(), Some(0));
    let _ = std::fs::remove_file(&trace);
}

/// Same at the metrics writer: the dump is written on the retry and is
/// valid JSON with the fault counters recording the injection.
#[test]
fn binary_fault_seed_metrics_write_recovers() {
    let metrics = temp_path("metrics.json");
    let seed = seed_for(Site::MetricsWrite);
    let mut child = tv()
        .arg("session")
        .arg("--metrics")
        .arg(&metrics)
        .arg("--fault-seed")
        .arg(seed.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tv");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"demo small\nanalyze\nquit\n")
        .expect("feed session");
    let out = child.wait_with_output().expect("run tv");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&metrics).expect("metrics written on retry");
    nmos_tv::obs::json::parse(&text).expect("metrics dump is valid JSON");
    assert!(
        text.contains("\"fault.injected\""),
        "fault counters missing from dump: {text}"
    );
    let _ = std::fs::remove_file(&metrics);
}
