//! Layout-refactor equivalence suite.
//!
//! The interner/CSR/workspace rewrite must be *observationally invisible*:
//! every `TimingReport` bit, every flow resolution, and every adjacency
//! list must come out exactly as the nested-Vec/String layout produced
//! them. These tests pin that down with the frozen FNV fingerprints from
//! [`nmos_tv::core::fingerprint`] on the `gen` workloads, captured from
//! the pre-refactor engine and hard-coded as goldens. (This suite used
//! to carry its own copy of the hash; the library version is the same
//! byte-for-byte definition, promoted so the session protocol and these
//! goldens can never drift apart.)

use nmos_tv::core::{report_fingerprint, AnalysisOptions, Analyzer};
use nmos_tv::flow::RuleSet;
use nmos_tv::gen::{adder, random, regfile, shifter};
use nmos_tv::netlist::{Netlist, Tech};

/// The frozen flow fingerprint over a fresh flow analysis.
fn flow_fingerprint(nl: &Netlist) -> u64 {
    let flow = nmos_tv::flow::analyze(nl, &RuleSet::all());
    nmos_tv::core::flow_fingerprint(nl, &flow)
}

fn workloads() -> Vec<(&'static str, Netlist)> {
    let t = Tech::nmos4um();
    vec![
        ("adder-16", adder::ripple_carry_adder(t.clone(), 16).netlist),
        (
            "barrel-8x4",
            shifter::barrel_shifter(t.clone(), 8, 4).netlist,
        ),
        (
            "regfile-4x8",
            regfile::register_file(t.clone(), 4, 8).netlist,
        ),
        (
            "random-800",
            random::random_logic(t, 800, 0xA11CE, random::RandomMix::default()).netlist,
        ),
    ]
}

/// Golden (report, flow) fingerprints captured from the nested-Vec /
/// String-name layout. The layout refactor must reproduce these exactly.
const GOLDENS: [(&str, u64, u64); 4] = [
    ("adder-16", 0xd81f4d67fd462d9e, 0xf19cea6b0e689915),
    ("barrel-8x4", 0x2c40b3fdbb1e99bd, 0x9665b05ab6c7a427),
    ("regfile-4x8", 0xd86d6780ad0e82a5, 0x13a72841390d883d),
    ("random-800", 0x443d83214401d559, 0xa1dd0f0fba92b578),
];

#[test]
fn reports_bit_identical_to_pre_layout_goldens() {
    for (name, nl) in workloads() {
        let report = Analyzer::new(&nl).run(&AnalysisOptions::default());
        let rf = report_fingerprint(&nl, &report);
        let ff = flow_fingerprint(&nl);
        let golden = GOLDENS.iter().find(|g| g.0 == name).expect("golden");
        assert_eq!(
            rf, golden.1,
            "{name}: report fingerprint drifted (got {rf:#x})"
        );
        assert_eq!(
            ff, golden.2,
            "{name}: flow fingerprint drifted (got {ff:#x})"
        );
    }
}

#[test]
fn reports_bit_identical_at_every_job_count() {
    for (name, nl) in workloads() {
        let base = report_fingerprint(
            &nl,
            &Analyzer::new(&nl).run(&AnalysisOptions {
                jobs: 1,
                ..AnalysisOptions::default()
            }),
        );
        for jobs in [2, 4, 8] {
            let r = Analyzer::new(&nl).run(&AnalysisOptions {
                jobs,
                ..AnalysisOptions::default()
            });
            assert_eq!(
                base,
                report_fingerprint(&nl, &r),
                "{name}: report differs at jobs={jobs}"
            );
        }
    }
}

/// The CSR adjacency (netlist gate/channel incidence and timing-graph
/// in/out arc lists) must match, element for element, a nested-Vec
/// reference rebuilt here from first principles with the old push-per-
/// edge scheme. Order matters: downstream walks and input collection
/// depend on ascending-id iteration, so a permutation would silently
/// change report contents even if the edge *sets* were equal.
#[test]
fn csr_adjacency_matches_nested_vec_reference() {
    use nmos_tv::core::analyzer::SOURCE_RESISTANCE;
    use nmos_tv::core::{DelayModel, PhaseCase, TimingGraph};

    for (name, nl) in workloads() {
        // Netlist incidence: one scan over devices in id order, exactly
        // how the pre-CSR builder populated its per-node Vecs.
        let n = nl.node_count();
        let mut gated = vec![Vec::new(); n];
        let mut channel = vec![Vec::new(); n];
        for d in nl.devices() {
            gated[d.device.gate().index()].push(d.id);
            channel[d.device.source().index()].push(d.id);
            channel[d.device.drain().index()].push(d.id);
        }
        for id in nl.node_ids() {
            let nd = nl.node_devices(id);
            assert_eq!(
                nd.gated,
                &gated[id.index()][..],
                "{name}: gate devices of node {id:?} differ"
            );
            assert_eq!(
                nd.channel,
                &channel[id.index()][..],
                "{name}: channel devices of node {id:?} differ"
            );
        }

        // Timing graph: rebuild nested out/in arc lists from the flat
        // arc array (push in arc-id order), compare against the CSR.
        let flow = nmos_tv::flow::analyze(&nl, &RuleSet::all());
        let qual = nmos_tv::clocks::qualify::qualify_with_flow(&nl, &flow);
        let g = TimingGraph::build(
            &nl,
            &flow,
            &qual,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            SOURCE_RESISTANCE,
        );
        let gn = g.node_count();
        let mut outs = vec![Vec::new(); gn];
        let mut ins = vec![Vec::new(); gn];
        for (ai, a) in g.arcs.iter().enumerate() {
            outs[a.from.index()].push(ai as u32);
            ins[a.to.index()].push(ai as u32);
        }
        for i in 0..gn {
            assert_eq!(
                g.out_arcs_of_index(i),
                &outs[i][..],
                "{name}: out arcs of node {i} differ"
            );
            assert_eq!(
                g.in_arcs_of_index(i),
                &ins[i][..],
                "{name}: in arcs of node {i} differ"
            );
        }
    }
}

/// Prints current fingerprints; run with `--ignored --nocapture` to
/// regenerate `GOLDENS` after an *intentional* semantic change.
#[test]
#[ignore]
fn print_fingerprints() {
    for (name, nl) in workloads() {
        let report = Analyzer::new(&nl).run(&AnalysisOptions::default());
        println!(
            "(\"{name}\", {:#x}, {:#x}),",
            report_fingerprint(&nl, &report),
            flow_fingerprint(&nl)
        );
    }
}
