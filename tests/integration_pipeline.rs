//! End-to-end pipeline tests: netlist construction → `.sim` round trip →
//! flow analysis → clock recovery → timing → report rendering, spanning
//! every crate in the workspace.

use nmos_tv::core::{AnalysisOptions, Analyzer};
use nmos_tv::flow::{analyze, RuleSet};
use nmos_tv::gen::datapath::{datapath, DatapathConfig};
use nmos_tv::gen::{chains, random};
use nmos_tv::netlist::{sim_format, NetlistBuilder, Tech};

#[test]
fn sim_format_round_trip_preserves_analysis_results() {
    let dp = datapath(Tech::nmos4um(), DatapathConfig::small());
    let text = sim_format::write(&dp.netlist);
    let back = sim_format::parse(&text, Tech::nmos4um()).expect("parse back");

    assert_eq!(back.device_count(), dp.netlist.device_count());
    assert_eq!(back.node_count(), dp.netlist.node_count());

    // The re-parsed netlist must produce the same timing verdicts.
    let opts = AnalysisOptions::default();
    let r1 = Analyzer::new(&dp.netlist).run(&opts);
    let r2 = Analyzer::new(&back).run(&opts);
    let m1 = r1.min_cycle.expect("phases ran");
    let m2 = r2.min_cycle.expect("phases ran");
    assert!(
        (m1 - m2).abs() < 1e-6,
        "round trip changed min cycle: {m1} vs {m2}"
    );
    assert_eq!(r1.latches.len(), r2.latches.len());
    assert_eq!(r1.checks.len(), r2.checks.len());
}

#[test]
fn datapath_report_is_complete_and_clean_of_cycles() {
    let dp = datapath(Tech::nmos4um(), DatapathConfig::small());
    let report = Analyzer::new(&dp.netlist).run(&AnalysisOptions::default());

    // Both phases analyzed, neither cyclic, with real critical paths.
    assert_eq!(report.phases.len(), 2);
    for phase in &report.phases {
        assert!(!phase.result.cyclic, "phase {} cyclic", phase.phase);
        assert!(phase.result.critical_arrival().unwrap_or(0.0) > 0.0);
        assert!(!phase.paths.is_empty());
    }
    // Latch population: 2 regs × 4 bits × (master + slave).
    assert_eq!(report.latches.len(), 16);
    // Rendering works and names real nodes.
    let text = report.render(&dp.netlist);
    assert!(text.contains("minimum cycle"));
    assert!(text.contains("rf_r0"));
}

#[test]
fn analysis_is_deterministic() {
    let c = random::random_logic(Tech::nmos4um(), 600, 42, random::RandomMix::default());
    let opts = AnalysisOptions::default();
    let r1 = Analyzer::new(&c.netlist).run(&opts);
    let r2 = Analyzer::new(&c.netlist).run(&opts);
    assert_eq!(r1.combinational.endpoints, r2.combinational.endpoints);
    assert_eq!(r1.checks.len(), r2.checks.len());
    assert_eq!(
        r1.flow_report.oriented + r1.flow_report.bidirectional,
        r2.flow_report.oriented + r2.flow_report.bidirectional
    );
}

#[test]
fn deeper_logic_is_slower_across_all_generators() {
    let opts = AnalysisOptions::default();
    let pairs = [
        (
            chains::inverter_chain(Tech::nmos4um(), 3, 1),
            chains::inverter_chain(Tech::nmos4um(), 9, 1),
        ),
        (
            chains::nand_chain(Tech::nmos4um(), 2, 2),
            chains::nand_chain(Tech::nmos4um(), 6, 2),
        ),
        (
            chains::pass_chain(Tech::nmos4um(), 2),
            chains::pass_chain(Tech::nmos4um(), 5),
        ),
    ];
    for (short, long) in pairs {
        let d_short = Analyzer::new(&short.netlist)
            .run(&opts)
            .arrival(short.output)
            .expect("reachable");
        let d_long = Analyzer::new(&long.netlist)
            .run(&opts)
            .arrival(long.output)
            .expect("reachable");
        assert!(d_long > d_short, "{d_long} should exceed {d_short}");
    }
}

#[test]
fn flow_and_clocks_compose_on_hand_built_register() {
    // Hand-build a master–slave register and verify the full stack sees
    // one coherent story: classification, qualification, latches, timing.
    let mut b = NetlistBuilder::new(Tech::nmos4um());
    let phi1 = b.clock("phi1", 0);
    let phi2 = b.clock("phi2", 1);
    let d = b.input("d");
    let m = b.node("m");
    b.dynamic_latch("master", phi1, d, m);
    let q = b.output("q");
    b.dynamic_latch("slave", phi2, m, q);
    let nl = b.finish().expect("valid");

    let flow = analyze(&nl, &RuleSet::all());
    assert_eq!(flow.report(&nl).unresolved, 0);

    let report = Analyzer::new(&nl).run(&AnalysisOptions::default());
    assert_eq!(report.latches.len(), 2);
    let phases: Vec<u8> = report.latches.iter().map(|l| l.phase).collect();
    assert!(phases.contains(&0) && phases.contains(&1));

    // φ1 case: new data arrives at the master storage strictly after the
    // phase opens, while the φ2 slave is a *source* holding stable data
    // (arrival 0 — nothing new reaches it through its closed pass gate).
    let p0 = report.phase(0).expect("phase 0 ran");
    let master_mem = nl.node_by_name("master_mem").unwrap();
    let slave_mem = nl.node_by_name("slave_mem").unwrap();
    assert!(p0.result.arrival(master_mem).unwrap_or(0.0) > 0.0);
    assert_eq!(p0.result.arrival(slave_mem), Some(0.0));

    // φ2 case: the master's stored value propagates into the slave, which
    // therefore arrives strictly later than the phase opening.
    let p1 = report.phase(1).expect("phase 1 ran");
    assert!(p1.result.arrival(slave_mem).unwrap_or(0.0) > 0.0);
}

#[test]
fn tech_scaling_speeds_up_circuits() {
    // The same topology in the scaled process has lower absolute delay
    // (smaller min devices => smaller gate loads at same resistance).
    let opts = AnalysisOptions::default();
    let big = chains::inverter_chain(Tech::nmos4um(), 6, 2);
    let small = chains::inverter_chain(Tech::nmos2um(), 6, 2);
    let d_big = Analyzer::new(&big.netlist)
        .run(&opts)
        .arrival(big.output)
        .unwrap();
    let d_small = Analyzer::new(&small.netlist)
        .run(&opts)
        .arrival(small.output)
        .unwrap();
    assert!(
        d_small < d_big,
        "scaled process should be faster: {d_small} vs {d_big}"
    );
}
