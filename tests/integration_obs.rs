//! End-to-end determinism tests for the observability subsystem.
//!
//! The counter plane's contract is structural: **work** counters are
//! bit-identical across `--jobs` counts, deterministic for a fixed
//! command sequence — and a warm run taking the demand-driven cone path
//! legitimately records *less* work than the cold run it shortcuts. The
//! counters are process-global atomics, so exact-value assertions spawn
//! the `tv` binary per measurement instead of sharing this test
//! process — which also exercises the `--metrics`/`--trace` plumbing
//! exactly the way a user does.

use std::path::{Path, PathBuf};
use std::process::Command;

use nmos_tv::gen::{adder, random, regfile, shifter};
use nmos_tv::netlist::{sim_format, Netlist, Tech};
use nmos_tv::obs::json::{self, Value};

fn tv() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tv"))
}

/// The four golden workloads of `integration_layout.rs`, by name.
fn workloads() -> Vec<(&'static str, Netlist)> {
    let t = Tech::nmos4um();
    vec![
        ("adder-16", adder::ripple_carry_adder(t.clone(), 16).netlist),
        (
            "barrel-8x4",
            shifter::barrel_shifter(t.clone(), 8, 4).netlist,
        ),
        (
            "regfile-4x8",
            regfile::register_file(t.clone(), 4, 8).netlist,
        ),
        (
            "random-800",
            random::random_logic(t, 800, 0xA11CE, random::RandomMix::default()).netlist,
        ),
    ]
}

/// A self-cleaning scratch file under the system temp dir.
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str, contents: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "tv-obs-{}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos(),
            tag,
        ));
        std::fs::write(&path, contents).expect("write temp file");
        TempPath(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Runs `tv analyze <sim> --jobs N --metrics <out>` and returns the raw
/// metrics dump.
fn metrics_dump(sim: &Path, jobs: u32) -> String {
    let out = TempPath::new("metrics.json", "");
    let status = tv()
        .arg("analyze")
        .arg(sim)
        .args(["--jobs", &jobs.to_string(), "--metrics"])
        .arg(out.path())
        .output()
        .expect("run tv analyze");
    assert!(
        status.status.success(),
        "analyze failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    std::fs::read_to_string(out.path()).expect("read metrics dump")
}

/// The `"work"` sub-object of a parsed counter block.
fn work_of(counters: &Value) -> Vec<(String, f64)> {
    let Some(Value::Obj(work)) = counters.get("work") else {
        panic!("no work block in {counters:?}");
    };
    work.iter()
        .map(|(k, v)| (k.clone(), v.as_num().expect("numeric counter")))
        .collect()
}

#[test]
fn metrics_dump_bit_identical_across_jobs() {
    for (name, netlist) in workloads() {
        let sim = TempPath::new("w.sim", &sim_format::write(&netlist));
        let base = metrics_dump(sim.path(), 1);
        for jobs in [2, 8] {
            let dump = metrics_dump(sim.path(), jobs);
            assert_eq!(
                base, dump,
                "{name}: metrics dump differs between --jobs 1 and --jobs {jobs}"
            );
        }
        // And the dump is a valid JSON document with a nonzero work plane.
        let work = work_of(&json::parse(&base).expect("metrics dump parses"));
        assert!(
            work.iter().any(|(_, v)| *v > 0.0),
            "{name}: work plane all zero"
        );
    }
}

#[test]
fn sim_round_trip_preserves_every_counter() {
    // `sim_format::write` is canonical, so parse → write → parse must
    // reproduce the byte-identical workload — and therefore the
    // byte-identical counter dump, parse statistics included.
    let t = Tech::nmos4um();
    for (name, netlist) in workloads() {
        let text = sim_format::write(&netlist);
        let parsed = sim_format::parse(&text, t.clone())
            .unwrap_or_else(|e| panic!("{name}: round trip failed: {e}"));
        let round = sim_format::write(&parsed);
        let a = TempPath::new("a.sim", &text);
        let b = TempPath::new("b.sim", &round);
        assert_eq!(
            metrics_dump(a.path(), 2),
            metrics_dump(b.path(), 2),
            "{name}: counters drift across a .sim round trip"
        );
    }
}

/// Replays the committed metrics smoke script and returns stdout.
fn batch_replay(jobs: u32) -> String {
    let script = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/metrics_smoke.txt");
    let out = tv()
        .arg("batch")
        .arg(&script)
        .args(["--jobs", &jobs.to_string()])
        .output()
        .expect("run tv batch");
    assert!(
        out.status.success(),
        "batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 replies")
}

#[test]
fn session_metrics_match_committed_golden_across_jobs() {
    let golden = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/metrics_smoke.golden"),
    )
    .expect("read committed golden");
    for jobs in [1, 2, 8] {
        assert_eq!(
            golden,
            batch_replay(jobs),
            "metrics smoke replay differs from committed golden at --jobs {jobs}"
        );
    }
}

#[test]
fn warm_session_analyses_report_less_work_than_cold() {
    // The smoke script takes three `metrics` marks: after the cold
    // analysis, after an edit + incremental re-analysis, and after a
    // fully-reused re-analysis. The demand-driven cone engine makes the
    // warm marks record strictly *less* propagation than the cold one —
    // that is the point of the cone — while staying deterministic (the
    // golden replay test pins the exact values across --jobs).
    let replies = batch_replay(2);
    let works: Vec<Vec<(String, f64)>> = replies
        .lines()
        .filter(|l| l.contains("\"cmd\":\"metrics\""))
        .map(|l| {
            let root = json::parse(l).expect("metrics reply parses");
            work_of(root.get("counters").expect("counters block"))
        })
        .collect();
    assert_eq!(works.len(), 3, "expected three metrics marks");
    let get = |mark: &[(String, f64)], key: &str| -> f64 {
        mark.iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("no {key} counter"))
            .1
    };
    // Cold mark: full propagation, no cone activity.
    assert!(get(&works[0], "propagate.relaxations") > 0.0);
    assert_eq!(get(&works[0], "cone.seeds"), 0.0);
    assert_eq!(get(&works[0], "cone.nodes"), 0.0);
    // Warm-after-edit mark: the cone fired (seeds and nodes nonzero, no
    // fallback) and did a small fraction of the cold relaxation work.
    assert!(get(&works[1], "cone.seeds") > 0.0, "cone never seeded");
    assert!(get(&works[1], "cone.nodes") > 0.0, "cone relaxed no nodes");
    assert_eq!(get(&works[1], "cone.fallbacks"), 0.0);
    assert!(
        get(&works[1], "propagate.relaxations") * 2.0 < get(&works[0], "propagate.relaxations"),
        "warm edit did not save relaxation work: warm {} vs cold {}",
        get(&works[1], "propagate.relaxations"),
        get(&works[0], "propagate.relaxations"),
    );
    // Fully-warm mark: everything reuses; the zero-seed cone relaxes
    // nothing, so even less work than the warm edit.
    assert!(
        get(&works[2], "propagate.relaxations") <= get(&works[1], "propagate.relaxations"),
        "fully-warm did more work than warm edit"
    );
}

#[test]
fn trace_flag_emits_chrome_trace_that_validates() {
    let (_, netlist) = workloads().remove(0);
    let sim = TempPath::new("t.sim", &sim_format::write(&netlist));
    let trace = TempPath::new("trace.json", "");
    let out = tv()
        .arg("analyze")
        .arg(sim.path())
        .arg("--trace")
        .arg(trace.path())
        .output()
        .expect("run tv analyze --trace");
    assert!(out.status.success());

    // Validate twice: through the library, and through the user-facing
    // `tv trace-check` subcommand.
    let text = std::fs::read_to_string(trace.path()).expect("read trace");
    let events = nmos_tv::obs::trace::validate(&text).expect("trace validates");
    assert!(events > 0, "trace has no events");

    let check = tv()
        .arg("trace-check")
        .arg(trace.path())
        .output()
        .expect("run tv trace-check");
    assert!(
        check.status.success(),
        "trace-check rejected the trace: {}",
        String::from_utf8_lossy(&check.stderr)
    );
}
