//! End-to-end identity tests for the chunk-parallel ingest path.
//!
//! The streaming reader's contract (DESIGN.md §15) is bit-identity: at
//! any `--jobs` value the parsed netlist, the diagnostic stream (codes,
//! order, `--max-errors` truncation), and the deterministic counter
//! dump are byte-equal to the serial reader's — and the pre-scan sizing
//! pass leaves `ingest.reallocs` at zero. These tests drive the `tv`
//! binary the way a user does, on netlists produced by `tv gen`, so the
//! whole generate → parse → analyze loop is exercised across the
//! process boundary.

use std::path::{Path, PathBuf};
use std::process::Command;

use nmos_tv::netlist::{sim_format, Diagnostics, Tech};
use nmos_tv::obs::json::{self, Value};

fn tv() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tv"))
}

/// A self-cleaning scratch file under the system temp dir.
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str, contents: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "tv-ingest-{}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos(),
            tag,
        ));
        std::fs::write(&path, contents).expect("write temp file");
        TempPath(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Generates a multi-core design with `tv gen` and returns the `.sim`
/// text. Two cores is ~30k devices and ~1.5 MiB — enough to split into
/// multiple default-size chunks, small enough for a debug-build test.
fn gen_sim(cores: usize) -> String {
    let out = TempPath::new("gen.sim", "");
    let res = tv()
        .args(["gen", "--cores", &cores.to_string(), "--out"])
        .arg(out.path())
        .output()
        .expect("run tv gen");
    assert!(
        res.status.success(),
        "tv gen failed: {}",
        String::from_utf8_lossy(&res.stderr)
    );
    std::fs::read_to_string(out.path()).expect("read generated sim")
}

/// Runs `tv flow <sim> --jobs N [extra args] --metrics <dump>` and
/// returns (exit code, stdout, stderr, metrics dump). `flow` reads the
/// netlist through the same recovering loader as `analyze` but skips
/// propagation, keeping the debug-build sweep fast.
fn flow_run(sim: &Path, jobs: u32, extra: &[&str]) -> (i32, String, String, String) {
    let dump = TempPath::new("metrics.json", "");
    let res = tv()
        .arg("flow")
        .arg(sim)
        .args(["--jobs", &jobs.to_string()])
        .args(extra)
        .arg("--metrics")
        .arg(dump.path())
        .output()
        .expect("run tv flow");
    (
        res.status.code().expect("exit code"),
        String::from_utf8_lossy(&res.stdout).into_owned(),
        String::from_utf8_lossy(&res.stderr).into_owned(),
        std::fs::read_to_string(dump.path()).unwrap_or_default(),
    )
}

/// A named counter from the `"telemetry"` block of a metrics dump.
fn telemetry(dump: &str, name: &str) -> u64 {
    let root = json::parse(dump).expect("metrics dump parses");
    let Some(Value::Obj(t)) = root.get("telemetry") else {
        panic!("no telemetry block in {dump}");
    };
    t.get(name)
        .and_then(Value::as_num)
        .unwrap_or_else(|| panic!("no {name} counter in dump")) as u64
}

#[test]
fn generated_netlist_ingests_identically_across_jobs() {
    let text = gen_sim(2);
    let sim = TempPath::new("mc2.sim", &text);
    let (code, stdout, stderr, dump) = flow_run(sim.path(), 1, &[]);
    assert_eq!(code, 0, "clean netlist must load cleanly: {stderr}");
    for jobs in [2, 8] {
        let (c, o, e, d) = flow_run(sim.path(), jobs, &[]);
        assert_eq!(
            (c, &o, &e),
            (code, &stdout, &stderr),
            "--jobs {jobs} diverged"
        );
        assert_eq!(d, dump, "--jobs {jobs}: metrics dump differs");
    }
    // The pre-scan sized every arena exactly: the whole build did zero
    // growth reallocations, and chunk accounting is jobs-invariant.
    assert_eq!(telemetry(&dump, "ingest.reallocs"), 0);
    assert!(
        telemetry(&dump, "ingest.chunks") >= 2,
        "text should span chunks"
    );
    assert_eq!(telemetry(&dump, "ingest.bytes"), text.len() as u64);
    assert!(telemetry(&dump, "ingest.prescan_syms") > 0);
}

#[test]
fn malformed_netlist_diagnostics_identical_across_jobs() {
    // Scatter every recovering-path diagnostic shape through a text big
    // enough to chunk: short device lines, bad numbers, bad caps,
    // unknown records — then cap the stream so truncation order matters.
    let clean = gen_sim(2);
    let lines: Vec<&str> = clean.lines().collect();
    let mut bad = String::new();
    for (i, l) in lines.iter().enumerate() {
        bad.push_str(l);
        bad.push('\n');
        match i % 5003 {
            0 => bad.push_str("e onlythree fields\n"),
            1001 => bad.push_str("C capnode notanumber\n"),
            2002 => bad.push_str("x what is this record\n"),
            3003 => bad.push_str("e g s d notwidth 2.0\n"),
            _ => {}
        }
    }
    let sim = TempPath::new("bad.sim", &bad);
    for extra in [&[][..], &["--max-errors", "3"][..]] {
        let (code, stdout, stderr, dump) = flow_run(sim.path(), 1, extra);
        assert_eq!(code, 1, "dirty parse must exit 1");
        assert!(stderr.contains("TV"), "diagnostics carry codes: {stderr}");
        for jobs in [2, 8] {
            let (c, o, e, d) = flow_run(sim.path(), jobs, extra);
            assert_eq!(
                (c, &o, &e),
                (code, &stdout, &stderr),
                "--jobs {jobs} {extra:?}: recovering output diverged"
            );
            assert_eq!(d, dump, "--jobs {jobs} {extra:?}: metrics dump differs");
        }
    }
}

#[test]
fn parse_chunk_fault_site_fires_identically_across_jobs() {
    use nmos_tv::fault::{FaultPlan, Site};

    let text = gen_sim(2);
    let sim = TempPath::new("fault.sim", &text);
    // Sweep seeds until three have targeted the parse_chunk site; every
    // seed — whatever site it arms — must behave identically at any
    // jobs count, and the parse_chunk ones must surface the injected
    // failure with its exact serial message.
    let mut parse_chunk_seeds = 0;
    for seed in 0..64u64 {
        let plan = FaultPlan::from_seed(seed);
        let is_parse = plan.site == Site::ParseChunk;
        if !is_parse && seed >= 16 {
            continue; // full sweep for early seeds, then parse_chunk only
        }
        let extra = ["--fault-seed", &seed.to_string()];
        let extra: Vec<&str> = extra.to_vec();
        let (code, stdout, stderr, _) = flow_run(sim.path(), 1, &extra);
        for jobs in [2, 8] {
            let (c, o, e, _) = flow_run(sim.path(), jobs, &extra);
            assert_eq!(
                (c, &o, &e),
                (code, &stdout, &stderr),
                "seed {seed} (site {:?}): fault behavior diverged at --jobs {jobs}",
                plan.site
            );
        }
        if is_parse {
            parse_chunk_seeds += 1;
            assert_eq!(
                code, 1,
                "seed {seed}: injected parse fault must fail the run"
            );
            assert!(
                stderr.contains("injected fault at parse_chunk"),
                "seed {seed}: expected the parse_chunk injection message, got: {stderr}"
            );
            if parse_chunk_seeds >= 3 {
                break;
            }
        }
    }
    assert!(
        parse_chunk_seeds >= 3,
        "seed sweep never reached three parse_chunk plans"
    );
}

#[test]
fn t5_scale_write_round_trips_bit_exactly() {
    // The pre-sized `sim_format::write` must stay canonical at T5
    // scale: write → parse → write reproduces the identical text, and
    // the reparsed netlist preserves the counts.
    use nmos_tv::gen::random::{random_logic, RandomMix};

    let t = Tech::nmos4um();
    let c = random_logic(t.clone(), 102_400, 0xC0FFEE, RandomMix::default());
    let text = sim_format::write(&c.netlist);
    let mut diags = Diagnostics::new();
    let reparsed = sim_format::parse_recovering(&text, t, &mut diags).expect("T5 text parses");
    assert!(diags.is_empty(), "round-trip must be diagnostic-free");
    assert_eq!(reparsed.device_count(), c.netlist.device_count());
    assert_eq!(reparsed.node_count(), c.netlist.node_count());
    assert_eq!(sim_format::write(&reparsed), text, "write is not canonical");
}

#[test]
fn gen_rejects_zero_cores() {
    let res = tv()
        .args(["gen", "--cores", "0"])
        .output()
        .expect("run tv gen");
    assert_eq!(res.status.code(), Some(2), "zero cores is a usage error");
}
