//! Hierarchical macromodel extraction suite (DESIGN.md §16).
//!
//! Three guarantees are pinned here:
//!
//! 1. **Structural-hash contract** — the per-stage grouping hash is a
//!    function of the stage's electrical structure alone: permuting the
//!    netlist insertion order never changes the hash multiset, while
//!    perturbing one device's W/L always does.
//! 2. **Flat identity** — the hierarchical build is an optimization,
//!    not an approximation: report fingerprints are bit-identical
//!    across `--jobs` 1/2/8 and between the one-shot analyzer and the
//!    pass pipeline on every golden workload.
//! 3. **Edit de-sharing** — a randomized 16-edit session on a
//!    replicated multi-core design splits edited stages out of their
//!    equivalence classes (the `extract` pass reports de-shared
//!    instances) and every warm result stays bit-identical to a cold
//!    flat analysis at every worker count.

use std::path::Path;
use std::process::Command;

use nmos_tv::core::{report_fingerprint, AnalysisOptions, Analyzer, PassId, PassManager};
use nmos_tv::flow::RuleSet;
use nmos_tv::gen::rng::Rng64;
use nmos_tv::netlist::{Design, Netlist, NetlistBuilder, NodeId, Tech};

/// Builds the same heterogeneous circuit — `n` blocks, each an
/// inverter driving a 2-input NAND through a pass transistor — with
/// the blocks inserted in the order given by `order`. Electrically the
/// result is identical for every permutation; only NodeId/DeviceId
/// assignment differs.
fn blocks_in_order(order: &[usize]) -> Netlist {
    let mut b = NetlistBuilder::new(Tech::nmos4um());
    let en = b.input("en");
    for &i in order {
        let a = b.input(format!("a{i}"));
        let c = b.input(format!("c{i}"));
        let s0 = b.node(format!("s0_{i}"));
        let s1 = b.node(format!("s1_{i}"));
        let out = b.output(format!("out{i}"));
        b.inverter(format!("inv{i}"), a, s0);
        b.pass(format!("p{i}"), en, s0, s1);
        b.nand(format!("nand{i}"), &[s1, c], out);
        b.add_cap(out, 0.05 + (i % 3) as f64 * 0.01).expect("cap");
    }
    b.finish().expect("valid netlist")
}

/// The per-stage structural hashes of a netlist, sorted so two
/// netlists can be compared as multisets regardless of stage order.
fn sorted_stage_hashes(nl: &Netlist) -> Vec<u64> {
    let flow = nmos_tv::flow::analyze(nl, &RuleSet::all());
    let mut hashes = flow.stages().structural_hashes(nl);
    hashes.sort_unstable();
    hashes
}

#[test]
fn structural_hash_ignores_insertion_order() {
    let n = 8usize;
    let base: Vec<usize> = (0..n).collect();
    let reference = sorted_stage_hashes(&blocks_in_order(&base));
    assert!(!reference.is_empty(), "reference netlist has no stages");

    let mut rng = Rng64::new(0x5EED_0123);
    for trial in 0..6 {
        // Fisher–Yates shuffle of the block insertion order.
        let mut order = base.clone();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.usize_range(0, i + 1));
        }
        assert_eq!(
            reference,
            sorted_stage_hashes(&blocks_in_order(&order)),
            "trial {trial}: permuted insertion order {order:?} changed the stage hash multiset"
        );
    }
}

#[test]
fn structural_hash_distinguishes_wl_perturbation() {
    let base: Vec<usize> = (0..8).collect();
    let reference = sorted_stage_hashes(&blocks_in_order(&base));

    // Same topology, one pull-down widened: the perturbed stage must
    // hash differently, and only that stage.
    let nl = blocks_in_order(&base);
    let mut design = Design::new(nl);
    let dev = design
        .netlist()
        .device_by_name("inv3_pd")
        .or_else(|| design.netlist().devices().map(|d| d.id).nth(5))
        .expect("a device to perturb");
    design.resize_device(dev, 9.0, 2.0).expect("resize");
    let perturbed = sorted_stage_hashes(design.netlist());

    assert_ne!(
        reference, perturbed,
        "widening one device left the stage hash multiset unchanged"
    );
    // The blocks are replicated, so stage hashes repeat: compare as
    // multisets. Exactly one instance moved from its old hash to a new
    // one.
    let mut counts = std::collections::HashMap::new();
    for &h in &reference {
        *counts.entry(h).or_insert(0i64) += 1;
    }
    for &h in &perturbed {
        *counts.entry(h).or_insert(0i64) -= 1;
    }
    let moved: i64 = counts.values().filter(|&&c| c > 0).sum();
    assert_eq!(
        moved, 1,
        "exactly one stage should change hash after a single-device resize"
    );
}

/// The golden workloads the flat-identity contract is checked on: the
/// MIPS-class datapath, a replicated two-core T6 design, irregular
/// random logic, and the Manchester carry chain.
fn golden_workloads() -> Vec<(&'static str, Netlist)> {
    use nmos_tv::gen;
    let tech = Tech::nmos4um();
    vec![
        (
            "mips32",
            gen::datapath::datapath(tech.clone(), gen::datapath::DatapathConfig::small()).netlist,
        ),
        (
            "t6-2core",
            gen::mips_mc::t6_mips_mc(tech.clone(), 2).netlist,
        ),
        (
            "random-1200",
            gen::random::random_logic(
                tech.clone(),
                1200,
                0x9AA7,
                gen::random::RandomMix::default(),
            )
            .netlist,
        ),
        (
            "manchester-16",
            gen::manchester::manchester_circuit(tech, 16, 4).netlist,
        ),
    ]
}

#[test]
fn reports_identical_across_jobs_and_pipelines_on_golden_workloads() {
    for (name, nl) in golden_workloads() {
        let opts_for = |jobs: usize| AnalysisOptions {
            jobs,
            ..AnalysisOptions::default()
        };
        let reference = Analyzer::new(&nl).run(&opts_for(1));
        let fp = report_fingerprint(&nl, &reference);
        for jobs in [2, 8] {
            let report = Analyzer::new(&nl).run(&opts_for(jobs));
            assert_eq!(
                fp,
                report_fingerprint(&nl, &report),
                "{name}: analyzer report diverged at jobs {jobs}"
            );
        }
        let design = Design::new(nl);
        for jobs in [1, 2, 8] {
            let mut pm = PassManager::new();
            let report = pm.analyze(&design, &opts_for(jobs));
            assert_eq!(
                fp,
                report_fingerprint(design.netlist(), &report),
                "{name}: pipeline report diverged at jobs {jobs}"
            );
            assert!(
                pm.extraction(None).is_some(),
                "{name}: combinational extraction missing after a cold analyze"
            );
        }
    }
}

#[test]
fn random_edit_session_desplits_and_stays_bit_identical() {
    // Lockstep pipelines over three copies of a replicated two-core
    // design, one per worker count. Every edit lands on all three;
    // every warm report must equal a cold flat analysis bit for bit.
    const JOBS: [usize; 3] = [1, 2, 8];
    let make = || Design::new(nmos_tv::gen::mips_mc::t6_mips_mc(Tech::nmos4um(), 2).netlist);
    let mut designs: Vec<Design> = (0..JOBS.len()).map(|_| make()).collect();
    let mut pms: Vec<PassManager> = (0..JOBS.len()).map(|_| PassManager::new()).collect();
    let opts_for = |jobs: usize| AnalysisOptions {
        jobs,
        ..AnalysisOptions::default()
    };
    for (k, jobs) in JOBS.iter().enumerate() {
        pms[k].analyze(&designs[k], &opts_for(*jobs));
    }

    let devs: Vec<_> = designs[0].netlist().devices().map(|d| d.id).collect();
    let caps: Vec<NodeId> = designs[0].netlist().outputs().to_vec();
    let mut rng = Rng64::new(0xDE5B_11F0);
    let mut desplit_total = 0usize;
    for step in 0..16 {
        if rng.bool(0.7) {
            let di = rng.usize_range(0, devs.len());
            let w = rng.f64_range(3.0, 8.0);
            for d in &mut designs {
                d.resize_device(devs[di], w, 2.0).expect("resize");
            }
        } else {
            let ni = rng.usize_range(0, caps.len());
            let pf = rng.f64_range(0.01, 0.08);
            for d in &mut designs {
                d.set_node_cap(caps[ni], pf).expect("setcap");
            }
        }

        let warm0 = pms[0].analyze(&designs[0], &opts_for(JOBS[0]));
        let fp0 = report_fingerprint(designs[0].netlist(), &warm0);
        desplit_total += pms[0]
            .last_trace()
            .iter()
            .filter(|e| matches!(e.pass, PassId::Extract(_)))
            .map(|e| match e.outcome {
                nmos_tv::core::PassOutcome::Spliced { roots } => roots,
                _ => 0,
            })
            .sum::<usize>();

        let cold = Analyzer::new(designs[0].netlist()).run(&opts_for(1));
        assert_eq!(
            fp0,
            report_fingerprint(designs[0].netlist(), &cold),
            "edit #{step}: warm jobs-1 report diverged from cold flat analysis"
        );
        for (k, jobs) in JOBS.iter().enumerate().skip(1) {
            let warm = pms[k].analyze(&designs[k], &opts_for(*jobs));
            assert_eq!(
                fp0,
                report_fingerprint(designs[k].netlist(), &warm),
                "edit #{step}: jobs {jobs} diverged from jobs 1"
            );
        }
    }
    // On a design that is two copies of the same core, a resized stage
    // is near-certainly instanced: the session must have de-shared.
    assert!(
        desplit_total > 0,
        "16 random edits on a replicated design never de-shared an instanced stage"
    );
}

#[test]
fn extract_smoke_replays_to_golden_and_shares_ninety_percent() {
    // The committed transcript is the acceptance evidence for
    // hierarchical extraction: the cold mips32 analyze analyzes one
    // master per stage class — under 10% of the stages it covers — and
    // the resize de-shares one instance per phase graph, bit-identically
    // at every worker count.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    let golden = std::fs::read_to_string(dir.join("extract_smoke.golden")).expect("read golden");
    for jobs in [1, 2, 8] {
        let out = Command::new(env!("CARGO_BIN_EXE_tv"))
            .arg("batch")
            .arg(dir.join("extract_smoke.txt"))
            .args(["--jobs", &jobs.to_string()])
            .output()
            .expect("run tv batch");
        assert!(
            out.status.success(),
            "batch failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            golden,
            String::from_utf8_lossy(&out.stdout),
            "extract smoke replay differs from committed golden at --jobs {jobs}"
        );
    }

    // Re-derive the acceptance figures from the golden itself, so the
    // transcript cannot drift away from the claim it exists to pin.
    let grab = |key: &str| -> Vec<u64> {
        golden
            .match_indices(&format!("\"{key}\":"))
            .map(|(i, m)| {
                golden[i + m.len()..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .expect("counter value")
            })
            .collect()
    };
    let analyzed = grab("macro.analyzed");
    let instanced = grab("macro.instanced");
    let desplit = grab("macro.desplit");
    let total = analyzed[0] + instanced[0];
    assert!(
        analyzed[0] * 10 < total,
        "cold analyze must analyze under 10% of stages: {} of {total}",
        analyzed[0]
    );
    assert!(
        desplit.iter().any(|&d| d > 0),
        "the resize never de-shared an instanced stage"
    );
}
